package network

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestFig3SwitchOperation walks the CCFIT switch behaviour of the
// paper's Fig. 3 as an executable narrative. Topology: Config #1;
// nodes 1 and 2 blast node 4 while node 5 joins locally, creating the
// congestion point at switch B's port to node 4.
//
//	Event #1/#2: packets arrive in the NFQ; crossing the detection
//	            threshold allocates a CFQ + CAM line (root).
//	Event #3:   post-processing moves congested packets NFQ -> CFQ.
//	Event #4/#5: the CFQ's occupancy drives Stop/Go flow control
//	            upstream, and the congestion info propagates so the
//	            upstream switch allocates its own (non-root) CFQ.
//	Event #6:   when traffic stops, CFQs drain and deallocate
//	            bottom-up, notifying upstream.
//	Event #7:   packets crossing the congested output port get FECN.
func TestFig3SwitchOperation(t *testing.T) {
	ring := trace.NewRing(1 << 14)
	p := core.PresetCCFIT()
	p.Tracer = ring
	n, err := Build(topo.Config1(), p, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	addFlows(t, n, []traffic.Flow{
		{ID: 1, Src: 1, Dst: 4, Start: 0, End: 150_000, Rate: 1.0},
		{ID: 2, Src: 2, Dst: 4, Start: 0, End: 150_000, Rate: 1.0},
		{ID: 5, Src: 5, Dst: 4, Start: 0, End: 150_000, Rate: 1.0},
	})

	swB := n.SwitchByDevice(topo.Config1SwitchB)
	swA := n.SwitchByDevice(topo.Config1SwitchA)
	// Switch B input port 4 receives the remote contributors (F1, F2)
	// from switch A; port 2 receives the local contributor (F5).
	isoB := swB.InputDisc(4).(*core.IsolationUnit)
	isoA1 := swA.InputDisc(1).(*core.IsolationUnit)

	// --- Events #1..#3: detection and isolation at switch B.
	n.Run(20_000)
	line, dests, ok := isoB.LineInfo(0)
	if !ok {
		t.Fatal("no CAM line at switch B port 4 after sustained congestion")
	}
	if len(dests) != 1 || dests[0] != 4 {
		t.Fatalf("line tracks %v, want the hot destination 4", dests)
	}
	if !line.Root {
		t.Fatal("switch B's CFQ must be the tree root (1 hop from node 4)")
	}
	if line.Out != 1 {
		t.Fatalf("line points at output %d, want 1 (to node 4)", line.Out)
	}
	if isoB.Stats().PostMoves == 0 {
		t.Fatal("post-processing never moved a congested packet")
	}

	// --- Event #4/#5 + propagation: switch A mirrors the tree.
	if swA.OutCAM(3).ActiveLines() == 0 {
		t.Fatal("switch A's output CAM (port 3 to B) has no line: propagation failed")
	}
	lineA, _, okA := isoA1.LineInfo(0)
	if !okA {
		t.Fatal("switch A input port 1 did not isolate the congested flow")
	}
	if lineA.Root {
		t.Fatal("switch A's CFQ wrongly claims to be the tree root")
	}
	// Direct CFQ-to-CFQ forwarding must be in use A -> B.
	if isoB.Stats().DirectArrivals == 0 {
		t.Fatal("no direct CFQ-to-CFQ deliveries into switch B")
	}

	// --- Event #7: marking at the congested output port, and the IA
	// reaction (Fig. 4): BECNs raise the contributors' CCTI.
	if swB.Stats().Marked == 0 {
		t.Fatal("no packets FECN-marked at the congested port")
	}
	for _, src := range []int{1, 2, 5} {
		if n.Nodes[src].Stats().BECNsReceived == 0 {
			t.Fatalf("contributor %d received no BECN", src)
		}
		if n.Nodes[src].Throttler().CCTI(4) == 0 {
			t.Fatalf("contributor %d's CCTI[4] never rose", src)
		}
	}
	// The victim path stays unthrottled: node 0 sends nothing, but
	// node 6 (idle) must have no CCTI state either.
	if n.Nodes[6].Throttler().CCTI(4) != 0 {
		t.Fatal("idle node accumulated throttling state")
	}

	// --- Event #6: teardown after the flows stop.
	n.Run(300_000)
	if isoB.ActiveLines() != 0 || isoA1.ActiveLines() != 0 {
		t.Fatal("CFQs not deallocated after the tree vanished")
	}
	if swA.OutCAM(3).ActiveLines() != 0 {
		t.Fatal("switch A's output CAM line not torn down")
	}
	// Trace ordering: the root detection precedes the upstream lazy
	// alloc, which precedes any Stop; deallocs come last.
	var firstDetect, firstLazy, firstStop, lastDealloc sim.Cycle
	lastDealloc = -1
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case core.EvDetect:
			if firstDetect == 0 {
				firstDetect = ev.At
			}
		case core.EvLazyAlloc:
			if firstLazy == 0 {
				firstLazy = ev.At
			}
		case core.EvStop:
			if firstStop == 0 {
				firstStop = ev.At
			}
		case core.EvDealloc:
			lastDealloc = ev.At
		}
	}
	if firstDetect == 0 || firstLazy == 0 {
		t.Fatal("trace lacks detection or propagation events")
	}
	if firstDetect > firstLazy {
		t.Fatalf("lazy alloc (%d) before first detection (%d)", firstLazy, firstDetect)
	}
	if lastDealloc < 0 {
		t.Fatal("no deallocation traced")
	}
	// CCTI decays to zero once the congestion is gone (Fig. 4 #7).
	for _, src := range []int{1, 2, 5} {
		if got := n.Nodes[src].Throttler().CCTI(4); got != 0 {
			t.Fatalf("contributor %d's CCTI[4] stuck at %d after recovery", src, got)
		}
	}
}

// TestFig4IAOperation focuses on the input adapter side (Fig. 4): the
// switch propagates the congestion point to the IA, the IA isolates
// the congested packets in its own CFQ, and the victim traffic of the
// same source flows around them.
func TestFig4IAOperation(t *testing.T) {
	p := core.PresetCCFIT()
	n, err := Build(topo.Config1(), p, Options{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 sends BOTH a hot flow (to 4) and a victim flow (to 3):
	// without IA isolation the victim would be stuck behind the hot
	// packets in the IA output buffer.
	addFlows(t, n, []traffic.Flow{
		{ID: 10, Src: 1, Dst: 4, Start: 0, End: 300_000, Rate: 0.7},
		{ID: 11, Src: 1, Dst: 3, Start: 0, End: 300_000, Rate: 0.3},
		{ID: 2, Src: 2, Dst: 4, Start: 0, End: 300_000, Rate: 1.0},
		{ID: 5, Src: 5, Dst: 4, Start: 0, End: 300_000, Rate: 1.0},
		{ID: 6, Src: 6, Dst: 4, Start: 0, End: 300_000, Rate: 1.0},
	})
	n.Run(300_000)
	ia := n.Nodes[1].Disc().(*core.IsolationUnit)
	if ia.Stats().LazyAllocs+ia.Stats().Detections == 0 {
		t.Fatal("the IA never allocated a CFQ")
	}
	bins := int(sim.Cycle(300_000) / n.Collector.BinCycles())
	victim := n.Collector.MeanFlowBandwidth(11, bins/2, bins)
	// The victim asked for 0.75 GB/s; it must get nearly all of it
	// even though its sibling flow is being throttled hard.
	if victim < 0.6 {
		t.Fatalf("victim flow sharing the source got %.2f GB/s, want ~0.75", victim)
	}
}
