package network

import (
	"fmt"

	"repro/internal/endnode"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/switchfab"
)

// InjectFaults schedules a validated fault script against this
// network: every event's target is resolved to a concrete component
// (links by the device ids of their ends, switches by device id, nodes
// by endpoint id) and handed to a deterministic injector seeded from
// (run seed, script seed). Call once, before Run — all scheduling is
// front-loaded so the run itself stays replayable.
func (n *Network) InjectFaults(s *fault.Script) (*fault.Injector, error) {
	if n.injector != nil {
		return nil, fmt.Errorf("network: fault script already injected")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	in := fault.NewInjector(n.Eng, n.Eng.Seed(), s.Seed)
	ne := n.Topo.NumEndpoints()
	for i := range s.Events {
		e := &s.Events[i]
		at, dur := e.Start(), e.Window()
		switch e.Kind {
		case fault.LinkDegrade, fault.LinkFlap, fault.CtlCorrupt, fault.CtlDuplicate, fault.CtlDelay:
			h := n.HalfByEnds(e.Link.From, e.Link.To)
			if h == nil {
				return nil, fmt.Errorf("network: event %d (%s): no link %s", i, e.Kind, e.Link)
			}
			if n.part != nil && h.Remote() {
				return nil, fmt.Errorf("network: event %d (%s): link %s is a partition cut link; fault injection on cut links is not supported under partitioned execution",
					i, e.Kind, e.Link)
			}
			switch e.Kind {
			case fault.LinkDegrade:
				if e.Params.BytesPerCycle > h.NominalBPC() {
					return nil, fmt.Errorf("network: event %d: degraded bandwidth %d exceeds nominal %d",
						i, e.Params.BytesPerCycle, h.NominalBPC())
				}
				in.WithEngine(n.engineFor(e.Link.From)).ScheduleLinkDegrade(at, dur, h, e.Params.BytesPerCycle)
			case fault.LinkFlap:
				in.WithEngine(n.engineFor(e.Link.From)).ScheduleLinkFlap(at, dur, h, e.Params.Drop)
			default:
				// The tamper closures draw from the injector's single random
				// stream at message time; under partitioning that stream would
				// be shared across worker goroutines and the draw order would
				// depend on scheduling.
				if n.part != nil {
					return nil, fmt.Errorf("network: event %d (%s): control tampering is not supported under partitioned execution (run with one sim worker)",
						i, e.Kind)
				}
				in.ScheduleCtlTamper(at, dur, h, e.Kind, e.Params.Prob,
					sim.Cycle(e.Params.Delay), n.Params.NumCFQs)
			}
		case fault.CtlNoise:
			// Noise draws targets, ports and payloads from the injector's
			// random stream at tick time — same cross-shard ordering problem
			// as tampering, so it is serial-only.
			if n.part != nil {
				return nil, fmt.Errorf("network: event %d (%s): control noise is not supported under partitioned execution (run with one sim worker)",
					i, e.Kind)
			}
			targets := n.Switches
			port := -1
			if e.Switch != nil {
				sw := n.byDev[*e.Switch]
				if sw == nil {
					return nil, fmt.Errorf("network: event %d (%s): no switch with device id %d", i, e.Kind, *e.Switch)
				}
				targets = []*switchfab.Switch{sw}
				if e.Port != nil {
					if *e.Port < 0 || *e.Port >= sw.NumPorts() {
						return nil, fmt.Errorf("network: event %d (%s): switch %d has no port %d", i, e.Kind, *e.Switch, *e.Port)
					}
					port = *e.Port
				}
			}
			if len(targets) == 0 {
				return nil, fmt.Errorf("network: event %d (%s): topology has no switches", i, e.Kind)
			}
			in.ScheduleCtlNoise(at, dur, targets, port, e.Params.Period, ne, n.Params.NumCFQs)
		case fault.SwitchStall:
			sw := n.byDev[*e.Switch]
			if sw == nil {
				return nil, fmt.Errorf("network: event %d (%s): no switch with device id %d", i, e.Kind, *e.Switch)
			}
			in.WithEngine(n.engineFor(*e.Switch)).ScheduleSwitchStall(at, dur, sw)
		case fault.NodePause:
			nd := n.nodeByRef(*e.Node)
			if nd == nil {
				return nil, fmt.Errorf("network: event %d (%s): no endpoint %d", i, e.Kind, *e.Node)
			}
			in.WithEngine(n.engineFor(n.Topo.EndpointDevice(*e.Node))).ScheduleNodePause(at, dur, nd)
		}
	}
	n.injector = in
	return in, nil
}

// engineFor returns the engine that owns dev's shard (the lone engine
// for serial runs). Link faults route through the sender device: the
// from→to half lives on the sender's shard.
func (n *Network) engineFor(dev int) *sim.Engine {
	if n.part == nil {
		return n.Eng
	}
	return n.engines[n.shardOfDevice(dev)]
}

// FaultInjector returns the injector installed by InjectFaults (nil
// when the run is fault-free).
func (n *Network) FaultInjector() *fault.Injector { return n.injector }

// nodeByRef resolves a script's node target (an endpoint id).
func (n *Network) nodeByRef(id int) *endnode.Node {
	if id >= 0 && id < len(n.Nodes) {
		return n.Nodes[id]
	}
	return nil
}
