package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestZeroLoadLatency pins the pipeline timing: one MTU from node 0 to
// node 3 on Config #1 crosses IA staging, two switches and three links
// with no contention. The expected latency decomposes into the model's
// stages, so a regression in any of them shifts this number.
func TestZeroLoadLatency(t *testing.T) {
	n := buildC1(t, core.Preset1Q())
	addFlows(t, n, []traffic.Flow{
		{ID: 0, Src: 0, Dst: 3, Start: 0, End: 33, Rate: 1.0},
	})
	n.Run(5000)
	if n.Collector.DeliveredPkts != 1 {
		t.Fatalf("delivered %d", n.Collector.DeliveredPkts)
	}
	// Stages: generator->AdVOQ (cycle 31, when the accumulator fills),
	// AdVOQ->IA buffer (1 cycle), IA link 32+4, switch A crossbar 16
	// (5 GB/s) + stage->interswitch link 16+4, switch B crossbar 32 +
	// stage->endpoint link 32+4, plus per-hop arbitration cycles.
	lat := n.Collector.AvgLatencyNS()
	min := sim.NSFromCycles(32 + 4 + 16 + 16 + 4 + 32 + 32 + 4) // ideal pipe
	max := min + sim.NSFromCycles(40)                           // arbitration slack
	if lat < min*0.8 || lat > max {
		t.Fatalf("zero-load latency %.0f ns outside [%.0f, %.0f]", lat, min*0.8, max)
	}
}

// TestVOQnetHotspotDoesNotSpreadCongestion is the VOQnet headline
// property made testable: a brutal 6:1 hot spot leaves an unrelated
// victim flow completely untouched, because hot packets can only ever
// occupy their own per-destination queues.
func TestVOQnetHotspotDoesNotSpreadCongestion(t *testing.T) {
	f := topo.Config2()
	n, err := Build(f.Topology, core.PresetVOQnet(), Options{Seed: 4, TieBreak: f.DETTieBreak})
	if err != nil {
		t.Fatal(err)
	}
	end := sim.Cycle(300_000)
	var flows []traffic.Flow
	// Six sources blast node 7.
	for s := 0; s < 6; s++ {
		flows = append(flows, traffic.Flow{ID: s, Src: s, Dst: 7, Start: 0, End: end, Rate: 1.0})
	}
	// The victim: 6 -> 5 (crosses the tree near the hot paths).
	flows = append(flows, traffic.Flow{ID: 99, Src: 6, Dst: 5, Start: 0, End: end, Rate: 1.0})
	addFlows(t, n, flows)
	n.Run(end)
	bins := int(end / n.Collector.BinCycles())
	victim := n.Collector.MeanFlowBandwidth(99, bins/2, bins)
	// A single flow through VOQnet's 4 KB (2-MTU) per-destination
	// queues tops out at 32/36 of line rate = 2.22 GB/s under this
	// simulator's store-and-forward credit loop (see DESIGN.md); the
	// invariant under test is that the hot spot costs nothing beyond
	// that ceiling.
	if victim < 2.2 {
		t.Fatalf("VOQnet victim at %.2f GB/s; congestion spread", victim)
	}
}

// TestCCFITLeavesNoResidue: after traffic ends and queues drain, every
// CFQ, CAM line, out-CAM line and congestion state must be released —
// on switches and IAs — for all three configurations.
func TestCCFITLeavesNoResidue(t *testing.T) {
	type build func() (*Network, []traffic.Flow)
	cases := map[string]build{
		"config1": func() (*Network, []traffic.Flow) {
			n, err := Build(topo.Config1(), core.PresetCCFIT(), Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			return n, []traffic.Flow{
				{ID: 1, Src: 1, Dst: 4, Start: 0, End: 100_000, Rate: 1.0},
				{ID: 2, Src: 2, Dst: 4, Start: 0, End: 100_000, Rate: 1.0},
				{ID: 5, Src: 5, Dst: 4, Start: 0, End: 100_000, Rate: 1.0},
			}
		},
		"config2": func() (*Network, []traffic.Flow) {
			f := topo.Config2()
			n, err := Build(f.Topology, core.PresetCCFIT(), Options{Seed: 2, TieBreak: f.DETTieBreak})
			if err != nil {
				t.Fatal(err)
			}
			var fl []traffic.Flow
			for s := 0; s < 5; s++ {
				fl = append(fl, traffic.Flow{ID: s, Src: s, Dst: 7, Start: 0, End: 100_000, Rate: 1.0})
			}
			return n, fl
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			n, flows := mk()
			addFlows(t, n, flows)
			n.Run(400_000) // traffic off at 100k, generous drain
			op, _ := n.TotalOffered()
			dp, _ := n.TotalDelivered()
			if op != dp {
				t.Fatalf("%d offered, %d delivered", op, dp)
			}
			for _, sw := range n.Switches {
				for i := 0; i < n.portCount(sw); i++ {
					if iso, ok := sw.InputDisc(i).(*core.IsolationUnit); ok {
						if iso.ActiveLines() != 0 {
							t.Fatalf("%s port %d leaks CAM lines", sw.Name(), i)
						}
						if iso.UsedBytes() != 0 {
							t.Fatalf("%s port %d holds %d bytes", sw.Name(), i, iso.UsedBytes())
						}
					}
					if sw.OutCAM(i).ActiveLines() != 0 {
						t.Fatalf("%s port %d leaks out-CAM lines", sw.Name(), i)
					}
					if sw.MarkState(i).Congested() {
						t.Fatalf("%s port %d stuck in congestion state", sw.Name(), i)
					}
				}
			}
			for _, nd := range n.Nodes {
				if iso, ok := nd.Disc().(*core.IsolationUnit); ok && iso.ActiveLines() != 0 {
					t.Fatalf("node %d IA leaks CAM lines", nd.ID())
				}
			}
		})
	}
}

// randomTree builds a random star-of-stars topology: one core switch,
// 1..4 edge switches, 1..3 endpoints per edge switch.
func randomTree(r *rand.Rand) *topo.Topology {
	b := topo.NewBuilder("random")
	edges := 1 + r.Intn(4)
	core := b.AddSwitch("core", edges)
	for e := 0; e < edges; e++ {
		eps := 1 + r.Intn(3)
		sw := b.AddSwitch("edge", eps+1)
		b.Connect(sw, eps, core, e)
		for i := 0; i < eps; i++ {
			ep := b.AddEndpoint("n")
			b.Connect(ep, 0, sw, i)
		}
	}
	return b.MustBuild()
}

// TestRandomNetworksLosslessProperty: random topologies, random flow
// sets, every scheme — after drain, offered == delivered, per-flow FIFO
// holds, and no buffer is left occupied.
func TestRandomNetworksLosslessProperty(t *testing.T) {
	schemes := []core.Params{
		core.Preset1Q(), core.PresetFBICM(), core.PresetITh(),
		core.PresetCCFIT(), core.PresetVOQnet(), core.PresetDBBM(),
		core.PresetVOQswOnly(), core.PresetOBQA(),
	}
	checked := 0
	f := func(seed int64, sc uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tp := randomTree(r)
		ne := tp.NumEndpoints()
		if ne < 2 {
			return true
		}
		p := schemes[int(sc)%len(schemes)]
		n, err := Build(tp, p, Options{Seed: seed})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		nf := 1 + r.Intn(5)
		var flows []traffic.Flow
		for i := 0; i < nf; i++ {
			src := r.Intn(ne)
			dst := r.Intn(ne)
			if dst == src {
				dst = (dst + 1) % ne
			}
			flows = append(flows, traffic.Flow{
				ID: i, Src: src, Dst: dst,
				Start: sim.Cycle(r.Intn(2000)),
				End:   sim.Cycle(2000 + r.Intn(20_000)),
				Rate:  0.2 + r.Float64()*0.8,
			})
		}
		lastID := map[int]uint64{}
		order := true
		for _, nd := range n.Nodes {
			nd := nd
			nd.SetDeliverHook(func(pk *pkt.Packet, now sim.Cycle) {
				n.Collector.Delivered(pk, now)
				if pk.ID <= lastID[pk.Flow] {
					order = false
				}
				lastID[pk.Flow] = pk.ID
			})
		}
		if err := n.AddFlows(flows); err != nil {
			t.Logf("flows: %v", err)
			return false
		}
		n.Run(400_000)
		op, ob := n.TotalOffered()
		dp, db := n.TotalDelivered()
		if op != dp || ob != db || !order {
			t.Logf("seed %d scheme %s: offered %d/%d delivered %d/%d order=%v",
				seed, p.Name, op, ob, dp, db, order)
			return false
		}
		checked++
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("property never exercised a network")
	}
}

// TestBECNTravelsFaster: BECN priority means a notification crosses a
// congested network far faster than the data packets around it.
func TestBECNPriorityEndToEnd(t *testing.T) {
	n := buildC1(t, core.PresetITh())
	addFlows(t, n, []traffic.Flow{
		{ID: 1, Src: 1, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
		{ID: 2, Src: 2, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
		{ID: 5, Src: 5, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
		{ID: 6, Src: 6, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
	})
	n.Run(200_000)
	// The throttlers at sources 1 and 2 (across the fabric from the
	// hot node) must have seen BECNs despite full queues en route.
	for _, src := range []int{1, 2} {
		if n.Nodes[src].Stats().BECNsReceived == 0 {
			t.Fatalf("node %d never received a BECN through the congested fabric", src)
		}
	}
}

// TestThroughputConservation: delivered bytes can never exceed offered
// bytes, and the collector agrees with node-level accounting.
func TestThroughputConservation(t *testing.T) {
	for _, p := range []core.Params{core.PresetCCFIT(), core.PresetITh()} {
		f := topo.Config2()
		n, err := Build(f.Topology, p, Options{Seed: 8, TieBreak: f.DETTieBreak})
		if err != nil {
			t.Fatal(err)
		}
		var flows []traffic.Flow
		for s := 0; s < 8; s++ {
			flows = append(flows, traffic.Flow{
				ID: s, Src: s, Dst: traffic.UniformDst, Start: 0, End: 100_000, Rate: 0.9,
			})
		}
		addFlows(t, n, flows)
		n.Run(100_000) // stop mid-flight: in-transit packets allowed
		_, ob := n.TotalOffered()
		_, db := n.TotalDelivered()
		if db > ob {
			t.Fatalf("%s: delivered %d > offered %d", p.Name, db, ob)
		}
		if int64(db) != n.Collector.DeliveredBytes {
			t.Fatalf("%s: node/collector disagree: %d vs %d", p.Name, db, n.Collector.DeliveredBytes)
		}
		if n.Collector.LatencyPercentileNS(0.5) <= 0 {
			t.Fatalf("%s: no latency percentile", p.Name)
		}
	}
}

// TestLeafSpineOversubscribed runs a CCFIT hot spot on an
// oversubscribed leaf-spine fabric: losslessness and victim protection
// must hold on topologies beyond the paper's three configurations.
func TestLeafSpineOversubscribed(t *testing.T) {
	ls, err := topo.NewLeafSpine(4, 4, 2, 1, 64, 4) // 16 nodes, 2:1 oversubscribed
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(ls.Topology, core.PresetCCFIT(), Options{Seed: 17, TieBreak: ls.DETTieBreak})
	if err != nil {
		t.Fatal(err)
	}
	end := sim.Cycle(250_000)
	flows := []traffic.Flow{
		// Victim: cross-fabric flow 0 -> 12.
		{ID: 0, Src: 0, Dst: 12, Start: 0, End: end, Rate: 1.0},
	}
	// Hot spot: five cross-fabric sources onto node 13.
	for i, src := range []int{1, 4, 5, 8, 9} {
		flows = append(flows, traffic.Flow{ID: 10 + i, Src: src, Dst: 13, Start: 0, End: end, Rate: 1.0})
	}
	addFlows(t, n, flows)
	n.Run(end + 150_000)
	op, _ := n.TotalOffered()
	dp, _ := n.TotalDelivered()
	if op != dp {
		t.Fatalf("leaf-spine lost packets: %d vs %d", op, dp)
	}
	bins := int(end / n.Collector.BinCycles())
	victim := n.Collector.MeanFlowBandwidth(0, bins/2, bins)
	// The victim shares a 2-spine fabric with the tree but CCFIT must
	// keep it at a healthy share of its 2.5 GB/s.
	if victim < 1.5 {
		t.Fatalf("victim at %.2f GB/s on leaf-spine under CCFIT", victim)
	}
}

// TestLinkLoads checks the utilization accounting: a single full-rate
// flow loads exactly the links on its path at ~100% and leaves every
// other link idle.
func TestLinkLoads(t *testing.T) {
	n := buildC1(t, core.Preset1Q())
	addFlows(t, n, []traffic.Flow{
		{ID: 0, Src: 5, Dst: 6, Start: 0, End: 100_000, Rate: 1.0},
	})
	n.Run(100_000)
	busy, idle := 0, 0
	for _, l := range n.LinkLoads() {
		switch {
		case l.Utilization > 0.9:
			busy++
			if l.Pkts == 0 || l.Bytes == 0 {
				t.Fatalf("busy link %s reports no traffic", l.Name)
			}
		case l.Utilization < 0.05:
			idle++
		default:
			t.Fatalf("link %s at ambiguous utilization %.2f", l.Name, l.Utilization)
		}
	}
	// Path 5 -> swB -> 6 loads two directions; everything else idles
	// (BECNs and credits are out of band).
	if busy != 2 {
		t.Fatalf("busy directions = %d, want 2", busy)
	}
	if idle != len(n.LinkLoads())-2 {
		t.Fatalf("idle directions = %d of %d", idle, len(n.LinkLoads()))
	}
}
