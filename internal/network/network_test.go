package network

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// buildC1 wires Configuration #1 with the given preset.
func buildC1(t *testing.T, p core.Params) *Network {
	t.Helper()
	n, err := Build(topo.Config1(), p, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func addFlows(t *testing.T, n *Network, flows []traffic.Flow) {
	t.Helper()
	if err := n.AddFlows(flows); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFlowDelivers(t *testing.T) {
	n := buildC1(t, core.Preset1Q())
	addFlows(t, n, []traffic.Flow{
		{ID: 0, Src: 0, Dst: 3, Start: 0, End: 10_000, Rate: 1.0},
	})
	n.Run(20_000) // generous drain time
	op, ob := n.TotalOffered()
	dp, db := n.TotalDelivered()
	if dp == 0 {
		t.Fatal("nothing delivered")
	}
	if op != dp || ob != db {
		t.Fatalf("lossless violated: offered %d/%dB, delivered %d/%dB", op, ob, dp, db)
	}
	// 10k cycles at 64 B/cyc offered = 640 KB = 312 MTUs; the path has
	// slack (hop latency) so expect nearly the full count.
	if dp < 300 {
		t.Fatalf("delivered %d packets, want ~312", dp)
	}
	if n.Collector.DeliveredPkts != int64(dp) {
		t.Fatalf("collector saw %d, nodes saw %d", n.Collector.DeliveredPkts, dp)
	}
}

func TestAllSchemesLossless(t *testing.T) {
	presets := []core.Params{
		core.Preset1Q(), core.PresetFBICM(), core.PresetITh(),
		core.PresetCCFIT(), core.PresetVOQnet(), core.PresetDBBM(),
	}
	for _, p := range presets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			n := buildC1(t, p)
			// The paper's Case #1 shape, compressed: a victim plus
			// four hot-spot flows onto node 4.
			addFlows(t, n, []traffic.Flow{
				{ID: 0, Src: 0, Dst: 3, Start: 0, End: 30_000, Rate: 1.0},
				{ID: 1, Src: 1, Dst: 4, Start: 2_000, End: 30_000, Rate: 1.0},
				{ID: 2, Src: 2, Dst: 4, Start: 4_000, End: 30_000, Rate: 1.0},
				{ID: 5, Src: 5, Dst: 4, Start: 6_000, End: 30_000, Rate: 1.0},
				{ID: 6, Src: 6, Dst: 4, Start: 6_000, End: 30_000, Rate: 1.0},
			})
			n.Run(300_000) // long drain: every queued packet must get out
			op, ob := n.TotalOffered()
			dp, db := n.TotalDelivered()
			if op != dp || ob != db {
				t.Fatalf("%s: offered %d pkts/%d B, delivered %d/%d", p.Name, op, ob, dp, db)
			}
			if dp == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

func TestPerFlowFIFOOrder(t *testing.T) {
	for _, preset := range []core.Params{core.PresetCCFIT(), core.PresetITh()} {
		p := preset
		n := buildC1(t, p)
		lastID := map[int]uint64{}
		for _, nd := range n.Nodes {
			nd := nd
			nd.SetDeliverHook(func(pk *pkt.Packet, now sim.Cycle) {
				n.Collector.Delivered(pk, now)
				if pk.ID <= lastID[pk.Flow] {
					t.Fatalf("%s: flow %d delivered id %d after %d (reorder)",
						p.Name, pk.Flow, pk.ID, lastID[pk.Flow])
				}
				lastID[pk.Flow] = pk.ID
			})
		}
		addFlows(t, n, []traffic.Flow{
			{ID: 0, Src: 0, Dst: 3, Start: 0, End: 40_000, Rate: 1.0},
			{ID: 1, Src: 1, Dst: 4, Start: 0, End: 40_000, Rate: 1.0},
			{ID: 2, Src: 2, Dst: 4, Start: 0, End: 40_000, Rate: 1.0},
		})
		n.Run(100_000)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int64) {
		n := buildC1(t, core.PresetCCFIT())
		addFlows(t, n, []traffic.Flow{
			{ID: 0, Src: 0, Dst: 3, Start: 0, End: 20_000, Rate: 1.0},
			{ID: 1, Src: 1, Dst: 4, Start: 0, End: 20_000, Rate: 1.0},
			{ID: 2, Src: 2, Dst: 4, Start: 0, End: 20_000, Rate: 1.0},
			{ID: 3, Src: 5, Dst: UniformSafe(4), Start: 0, End: 20_000, Rate: 0.8},
		})
		n.Run(60_000)
		_, db := n.TotalDelivered()
		return int(n.Collector.DeliveredPkts), int64(db)
	}
	p1, b1 := run()
	p2, b2 := run()
	if p1 != p2 || b1 != b2 {
		t.Fatalf("non-deterministic: run1 %d/%d, run2 %d/%d", p1, b1, p2, b2)
	}
}

// UniformSafe just documents intent: flow 3 is a fixed-destination flow
// in the determinism test.
func UniformSafe(d int) int { return d }

func TestHotspotCongestsOneQButNotCCFIT(t *testing.T) {
	// The core qualitative claim (Figs. 7/9): under a hot spot, the
	// victim flow's throughput collapses with 1Q and survives with
	// CCFIT's isolation.
	victim := func(p core.Params) float64 {
		n := buildC1(t, p)
		addFlows(t, n, []traffic.Flow{
			{ID: 0, Src: 0, Dst: 3, Start: 0, End: 400_000, Rate: 1.0}, // victim
			{ID: 1, Src: 1, Dst: 4, Start: 0, End: 400_000, Rate: 1.0},
			{ID: 2, Src: 2, Dst: 4, Start: 0, End: 400_000, Rate: 1.0},
			{ID: 5, Src: 5, Dst: 4, Start: 0, End: 400_000, Rate: 1.0},
			{ID: 6, Src: 6, Dst: 4, Start: 0, End: 400_000, Rate: 1.0},
		})
		n.Run(400_000)
		bins := int(sim.Cycle(400_000) / n.Collector.BinCycles())
		// Steady-state window: second half of the run.
		return n.Collector.MeanFlowBandwidth(0, bins/2, bins)
	}
	v1q := victim(core.Preset1Q())
	vcc := victim(core.PresetCCFIT())
	// The victim's fair share is its full 2.5 GB/s (it is alone on
	// every link it uses once contributors are isolated/throttled).
	if vcc < 2.0 {
		t.Fatalf("CCFIT victim bandwidth = %.2f GB/s, want > 2.0", vcc)
	}
	if v1q > vcc*0.7 {
		t.Fatalf("1Q victim %.2f GB/s vs CCFIT %.2f GB/s: HoL-blocking not visible", v1q, vcc)
	}
}

func TestIThGeneratesBECNsAndThrottles(t *testing.T) {
	n := buildC1(t, core.PresetITh())
	addFlows(t, n, []traffic.Flow{
		{ID: 1, Src: 1, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
		{ID: 2, Src: 2, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
		{ID: 5, Src: 5, Dst: 4, Start: 0, End: 200_000, Rate: 1.0},
	})
	n.Run(200_000)
	becns := 0
	stalls := 0
	for _, nd := range n.Nodes {
		becns += nd.Stats().BECNsReceived
		stalls += nd.Stats().ThrottleStalls
	}
	if becns == 0 {
		t.Fatal("no BECNs under a 3:1 hot spot with ITh")
	}
	if stalls == 0 {
		t.Fatal("BECNs arrived but throttling never gated an injection")
	}
	if n.Nodes[4].Stats().FECNSeen == 0 {
		t.Fatal("hot destination saw no FECN marks")
	}
}

func TestFBICMAllocatesAndReleasesCFQs(t *testing.T) {
	n := buildC1(t, core.PresetFBICM())
	addFlows(t, n, []traffic.Flow{
		{ID: 1, Src: 1, Dst: 4, Start: 0, End: 100_000, Rate: 1.0},
		{ID: 2, Src: 2, Dst: 4, Start: 0, End: 100_000, Rate: 1.0},
		{ID: 5, Src: 5, Dst: 4, Start: 0, End: 100_000, Rate: 1.0},
	})
	n.Run(300_000) // traffic stops at 100k; trees must dissolve
	s := n.DiscStatsSum()
	if s.Detections == 0 {
		t.Fatal("no congestion detected under a 3:1 hot spot")
	}
	if s.Deallocs == 0 {
		t.Fatal("no CFQ was ever released")
	}
	// After the drain every CAM line must be free (leak check).
	for _, sw := range n.Switches {
		for i := 0; i < n.portCount(sw); i++ {
			if iso, ok := sw.InputDisc(i).(*core.IsolationUnit); ok {
				if iso.ActiveLines() != 0 {
					t.Fatalf("switch %s port %d leaks %d CAM lines", sw.Name(), i, iso.ActiveLines())
				}
			}
			if sw.OutCAM(i).ActiveLines() != 0 {
				t.Fatalf("switch %s port %d leaks output CAM lines", sw.Name(), i)
			}
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	p := core.PresetCCFIT()
	p.NumCFQs = 0
	if _, err := Build(topo.Config1(), p, Options{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestDoubleAddFlowsRejected(t *testing.T) {
	n := buildC1(t, core.Preset1Q())
	addFlows(t, n, []traffic.Flow{{ID: 0, Src: 0, Dst: 3, Start: 0, End: 100, Rate: 1}})
	if err := n.AddFlows(nil); err == nil {
		t.Fatal("second AddFlows accepted")
	}
}

func TestFatTreeUniformTraffic(t *testing.T) {
	f := topo.Config2()
	p := core.PresetCCFIT()
	n, err := Build(f.Topology, p, Options{Seed: 3, TieBreak: f.DETTieBreak})
	if err != nil {
		t.Fatal(err)
	}
	var flows []traffic.Flow
	for s := 0; s < 8; s++ {
		flows = append(flows, traffic.Flow{
			ID: s, Src: s, Dst: traffic.UniformDst, Start: 0, End: 50_000, Rate: 0.6,
		})
	}
	addFlows(t, n, flows)
	n.Run(150_000)
	op, _ := n.TotalOffered()
	dp, _ := n.TotalDelivered()
	if op != dp {
		t.Fatalf("uniform traffic lost packets: offered %d delivered %d", op, dp)
	}
	if dp < 1000 {
		t.Fatalf("only %d packets delivered", dp)
	}
}
