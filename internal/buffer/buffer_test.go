package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

func mk(size int) *pkt.Packet {
	var g pkt.IDGen
	return pkt.NewData(&g, 0, 1, 0, size, 0)
}

func TestFIFOOrder(t *testing.T) {
	q := NewQueue("q", nil)
	var g pkt.IDGen
	var want []uint64
	for i := 0; i < 100; i++ {
		p := pkt.NewData(&g, 0, 1, 0, 64, 0)
		want = append(want, p.ID)
		q.Push(p)
	}
	if q.Len() != 100 || q.Bytes() != 6400 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i, id := range want {
		p := q.Pop()
		if p == nil || p.ID != id {
			t.Fatalf("pop %d: got %v, want id %d", i, p, id)
		}
	}
	if !q.Empty() || q.Bytes() != 0 {
		t.Fatal("queue not empty after draining")
	}
	if q.Pop() != nil || q.Head() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Exercise the ring buffer wrap-around.
	q := NewQueue("q", nil)
	var g pkt.IDGen
	next := uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(pkt.NewData(&g, 0, 1, 0, 64, 0))
		}
		for i := 0; i < 2; i++ {
			p := q.Pop()
			if p.ID != next {
				t.Fatalf("round %d: got id %d, want %d", round, p.ID, next)
			}
			next++
		}
	}
	if q.Len() != 50 {
		t.Fatalf("len = %d, want 50", q.Len())
	}
}

func TestAtIndexes(t *testing.T) {
	q := NewQueue("q", nil)
	var g pkt.IDGen
	for i := 0; i < 10; i++ {
		q.Push(pkt.NewData(&g, 0, i, 0, 64, 0))
	}
	q.Pop()
	q.Pop()
	for i := 0; i < q.Len(); i++ {
		if q.At(i).Dst != i+2 {
			t.Fatalf("At(%d).Dst = %d, want %d", i, q.At(i).Dst, i+2)
		}
	}
	if q.At(-1) != nil || q.At(q.Len()) != nil {
		t.Fatal("out-of-range At returned a packet")
	}
}

func TestRAMAccounting(t *testing.T) {
	ram := NewRAM(1024)
	q := NewQueue("q", ram)
	q.Push(mk(512))
	if ram.Used() != 512 || ram.Free() != 512 {
		t.Fatalf("used=%d free=%d", ram.Used(), ram.Free())
	}
	if !ram.Fits(512) || ram.Fits(513) {
		t.Fatal("Fits miscounts")
	}
	q.Pop()
	if ram.Used() != 0 {
		t.Fatalf("used=%d after pop", ram.Used())
	}
}

func TestRAMSharedAcrossQueues(t *testing.T) {
	ram := NewRAM(1000)
	a := NewQueue("a", ram)
	b := NewQueue("b", ram)
	a.Push(mk(400))
	b.Push(mk(400))
	if ram.Free() != 200 {
		t.Fatalf("free=%d, want 200", ram.Free())
	}
	if ram.Fits(400) {
		t.Fatal("overcommit allowed")
	}
}

func TestRAMOverflowPanics(t *testing.T) {
	ram := NewRAM(100)
	q := NewQueue("q", ram)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Push(mk(101))
}

func TestTransferHeadSamePool(t *testing.T) {
	ram := NewRAM(1024)
	nfq := NewQueue("nfq", ram)
	cfq := NewQueue("cfq", ram)
	p := mk(512)
	nfq.Push(p)
	got := nfq.TransferHead(cfq)
	if got != p {
		t.Fatal("TransferHead returned wrong packet")
	}
	if ram.Used() != 512 {
		t.Fatalf("used=%d, want 512 (move must not double-count)", ram.Used())
	}
	if nfq.Len() != 0 || cfq.Len() != 1 || cfq.Bytes() != 512 {
		t.Fatal("queues inconsistent after move")
	}
	if cfq.Pop() != p {
		t.Fatal("moved packet lost")
	}
	if ram.Used() != 0 {
		t.Fatalf("used=%d after final pop", ram.Used())
	}
}

func TestTransferHeadAcrossPools(t *testing.T) {
	ra, rb := NewRAM(1024), NewRAM(1024)
	a := NewQueue("a", ra)
	b := NewQueue("b", rb)
	a.Push(mk(256))
	a.TransferHead(b)
	if ra.Used() != 0 || rb.Used() != 256 {
		t.Fatalf("ra=%d rb=%d", ra.Used(), rb.Used())
	}
}

func TestTransferHeadEmpty(t *testing.T) {
	a := NewQueue("a", nil)
	b := NewQueue("b", nil)
	if a.TransferHead(b) != nil {
		t.Fatal("transfer from empty queue returned a packet")
	}
}

// Property: any sequence of pushes and pops keeps byte accounting exact
// and preserves FIFO order.
func TestQueueInvariantsProperty(t *testing.T) {
	f := func(ops []bool, sizes []uint8) bool {
		ram := NewRAM(1 << 20)
		q := NewQueue("q", ram)
		var g pkt.IDGen
		var model []*pkt.Packet
		si := 0
		for _, push := range ops {
			if push {
				size := 1
				if si < len(sizes) {
					size = int(sizes[si])%2048 + 1
					si++
				}
				p := pkt.NewData(&g, 0, 1, 0, size, 0)
				q.Push(p)
				model = append(model, p)
			} else if len(model) > 0 {
				got := q.Pop()
				if got != model[0] {
					return false
				}
				model = model[1:]
			} else if q.Pop() != nil {
				return false
			}
			wantBytes := 0
			for _, p := range model {
				wantBytes += p.Size
			}
			if q.Bytes() != wantBytes || q.Len() != len(model) || ram.Used() != wantBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingShrinksAfterDrain(t *testing.T) {
	q := NewQueue("q", nil)
	for i := 0; i < 1000; i++ {
		q.Push(mk(64))
	}
	peak := q.RingCap()
	if peak < 1000 {
		t.Fatalf("ring cap %d after 1000 pushes", peak)
	}
	// Drain to empty: the ring must give the burst allocation back
	// instead of pinning it for the rest of the run.
	var popped int
	for q.Pop() != nil {
		popped++
	}
	if popped != 1000 {
		t.Fatalf("popped %d packets, want 1000", popped)
	}
	if got := q.RingCap(); got > peak/8 {
		t.Errorf("ring cap still %d after full drain (peak %d)", got, peak)
	}
	// FIFO behaviour must survive shrinking mid-stream.
	var g pkt.IDGen
	var want []uint64
	for i := 0; i < 300; i++ {
		p := pkt.NewData(&g, 0, 1, 0, 64, 0)
		want = append(want, p.ID)
		q.Push(p)
	}
	for i := 0; i < 250; i++ {
		if p := q.Pop(); p.ID != want[i] {
			t.Fatalf("pop %d: got id %d, want %d", i, p.ID, want[i])
		}
	}
	if q.RingCap() >= 512 {
		t.Errorf("ring cap %d with 50 packets left", q.RingCap())
	}
	for i := 250; i < 300; i++ {
		if p := q.Pop(); p.ID != want[i] {
			t.Fatalf("pop %d: got id %d, want %d", i, p.ID, want[i])
		}
	}
}
