// Package buffer provides the byte-accounted FIFO queues and the shared
// per-port RAM pool used by switch input ports and input adapters. The
// paper's ports hold a single RAM dynamically organised into queues
// (NFQ + CFQs, VOQs, ...); admission is governed by free bytes in the
// whole RAM, while each queue tracks its own occupancy for threshold
// logic (detection, Stop/Go, High/Low).
package buffer

import (
	"fmt"

	"repro/internal/pkt"
)

// Queue is a FIFO of packets with byte-occupancy accounting. The zero
// value is usable; attach a RAM with SetRAM to share a byte pool.
type Queue struct {
	name  string
	ram   *RAM
	pkts  []*pkt.Packet // ring buffer
	head  int
	count int
	bytes int
}

// NewQueue returns an empty queue drawing from ram (nil for unpooled).
func NewQueue(name string, ram *RAM) *Queue {
	return &Queue{name: name, ram: ram}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Bytes returns the queued byte count.
func (q *Queue) Bytes() int { return q.bytes }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return q.count == 0 }

// Head returns the packet at the front without removing it, or nil.
func (q *Queue) Head() *pkt.Packet {
	if q.count == 0 {
		return nil
	}
	return q.pkts[q.head]
}

// At returns the i-th queued packet (0 = head). Used by detection scans.
func (q *Queue) At(i int) *pkt.Packet {
	if i < 0 || i >= q.count {
		return nil
	}
	return q.pkts[(q.head+i)%len(q.pkts)]
}

// Push appends p. It accounts p.Size bytes against the shared RAM; the
// caller must have checked admission (RAM.Free) first — Push panics on
// pool overflow, because losing a packet would silently violate the
// lossless-network invariant.
func (q *Queue) Push(p *pkt.Packet) {
	if q.ram != nil {
		q.ram.take(p.Size)
	}
	if q.count == len(q.pkts) {
		q.grow()
	}
	q.pkts[(q.head+q.count)%len(q.pkts)] = p
	q.count++
	q.bytes += p.Size
}

// Pop removes and returns the head packet, releasing its bytes back to
// the RAM pool. Returns nil when empty.
func (q *Queue) Pop() *pkt.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head = (q.head + 1) % len(q.pkts)
	q.count--
	q.bytes -= p.Size
	if q.ram != nil {
		q.ram.give(p.Size)
	}
	q.maybeShrink()
	return p
}

// TransferHead moves the head packet of q to the tail of dst without
// touching RAM accounting when both share the same pool (the paper's
// post-processing move: NFQ -> CFQ inside one port RAM). If the pools
// differ it is equivalent to dst.Push(q.Pop()).
func (q *Queue) TransferHead(dst *Queue) *pkt.Packet {
	if q.count == 0 {
		return nil
	}
	if q.ram == dst.ram && q.ram != nil {
		p := q.pkts[q.head]
		q.pkts[q.head] = nil
		q.head = (q.head + 1) % len(q.pkts)
		q.count--
		q.bytes -= p.Size
		q.maybeShrink()
		if dst.count == len(dst.pkts) {
			dst.grow()
		}
		dst.pkts[(dst.head+dst.count)%len(dst.pkts)] = p
		dst.count++
		dst.bytes += p.Size
		return p
	}
	p := q.Pop()
	if p != nil {
		dst.Push(p)
	}
	return p
}

// minRing is the smallest ring allocated; rings never shrink below it.
const minRing = 8

func (q *Queue) grow() {
	n := len(q.pkts) * 2
	if n == 0 {
		n = minRing
	}
	np := make([]*pkt.Packet, n)
	for i := 0; i < q.count; i++ {
		np[i] = q.pkts[(q.head+i)%len(q.pkts)]
	}
	q.pkts = np
	q.head = 0
}

// maybeShrink halves the ring once a drain leaves it at most quarter
// full, so long-lived idle ports do not pin one burst's peak ring for
// the rest of the run. The quarter-fill hysteresis keeps a queue that
// oscillates around a size from thrashing between grow and shrink.
func (q *Queue) maybeShrink() {
	n := len(q.pkts)
	if n <= minRing || q.count > n/4 {
		return
	}
	np := make([]*pkt.Packet, n/2)
	for i := 0; i < q.count; i++ {
		np[i] = q.pkts[(q.head+i)%n]
	}
	q.pkts = np
	q.head = 0
}

// RingCap returns the current ring allocation (tests, diagnostics).
func (q *Queue) RingCap() int { return len(q.pkts) }

// RAM is a shared byte pool modelling one port memory (Table I: 64 KB
// per input port). Queues drawing from it account their packets here;
// admission control compares incoming packet sizes against Free.
type RAM struct {
	capacity int
	used     int
}

// NewRAM returns a pool of the given capacity in bytes.
func NewRAM(capacity int) *RAM { return &RAM{capacity: capacity} }

// Capacity returns the total pool size in bytes.
func (r *RAM) Capacity() int { return r.capacity }

// Used returns the bytes currently held by queues on this pool.
func (r *RAM) Used() int { return r.used }

// Free returns the available bytes.
func (r *RAM) Free() int { return r.capacity - r.used }

// Fits reports whether a packet of the given size can be admitted.
func (r *RAM) Fits(size int) bool { return size <= r.Free() }

func (r *RAM) take(n int) {
	if n > r.Free() {
		panic(fmt.Sprintf("buffer: RAM overflow: take %d with %d free (lossless invariant violated)", n, r.Free()))
	}
	r.used += n
}

func (r *RAM) give(n int) {
	if n > r.used {
		panic(fmt.Sprintf("buffer: RAM underflow: give %d with %d used", n, r.used))
	}
	r.used -= n
}
