// Package cam models the content-addressable memories that FBICM and
// CCFIT attach to every switch port (Section III-A of the paper). A CAM
// has a fixed number of lines; each valid line holds the congestion
// information of one congestion point — for deterministic distributed
// routing that is a set of destination endpoints — plus a scheme-defined
// payload (input lines reference a CFQ, output lines the downstream CFQ
// and its Stop/Go state). Incoming packets are matched by destination.
package cam

import "fmt"

type entry[T any] struct {
	valid   bool
	dests   []int
	payload T
}

// CAM is a fixed-size content-addressable memory with payload type T.
// Line indices are stable for the lifetime of an allocation.
type CAM[T any] struct {
	lines []entry[T]
}

// New returns a CAM with the given number of lines.
func New[T any](lines int) *CAM[T] {
	if lines < 0 {
		panic("cam: negative line count")
	}
	return &CAM[T]{lines: make([]entry[T], lines)}
}

// Size returns the total number of lines.
func (c *CAM[T]) Size() int { return len(c.lines) }

// FreeLines returns the number of unallocated lines.
func (c *CAM[T]) FreeLines() int {
	n := 0
	for i := range c.lines {
		if !c.lines[i].valid {
			n++
		}
	}
	return n
}

// Match returns the index of the first valid line containing dest,
// or -1 if no line matches.
func (c *CAM[T]) Match(dest int) int {
	for i := range c.lines {
		if !c.lines[i].valid {
			continue
		}
		for _, d := range c.lines[i].dests {
			if d == dest {
				return i
			}
		}
	}
	return -1
}

// Alloc claims a free line for the given destination set and payload.
// It returns the line index, or -1 when the CAM is full (the FBICM
// failure mode the paper studies: more congestion trees than lines).
func (c *CAM[T]) Alloc(dests []int, payload T) int {
	for i := range c.lines {
		if c.lines[i].valid {
			continue
		}
		c.lines[i] = entry[T]{valid: true, dests: append([]int(nil), dests...), payload: payload}
		return i
	}
	return -1
}

// Free releases line idx. Freeing an invalid line panics: it indicates
// a double-deallocation bug in the congestion-tree teardown protocol.
func (c *CAM[T]) Free(idx int) {
	if !c.lines[idx].valid {
		panic(fmt.Sprintf("cam: double free of line %d", idx))
	}
	var zero entry[T]
	c.lines[idx] = zero
}

// Valid reports whether line idx is allocated.
func (c *CAM[T]) Valid(idx int) bool {
	return idx >= 0 && idx < len(c.lines) && c.lines[idx].valid
}

// Payload returns a pointer to line idx's payload for in-place updates.
func (c *CAM[T]) Payload(idx int) *T {
	if !c.lines[idx].valid {
		panic(fmt.Sprintf("cam: payload of free line %d", idx))
	}
	return &c.lines[idx].payload
}

// Dests returns the destination set of line idx (callers must not
// mutate it).
func (c *CAM[T]) Dests(idx int) []int {
	if !c.lines[idx].valid {
		panic(fmt.Sprintf("cam: dests of free line %d", idx))
	}
	return c.lines[idx].dests
}

// AddDest extends line idx's destination set (deduplicated).
func (c *CAM[T]) AddDest(idx, dest int) {
	if !c.lines[idx].valid {
		panic(fmt.Sprintf("cam: AddDest on free line %d", idx))
	}
	for _, d := range c.lines[idx].dests {
		if d == dest {
			return
		}
	}
	c.lines[idx].dests = append(c.lines[idx].dests, dest)
}

// Each calls fn for every valid line.
func (c *CAM[T]) Each(fn func(idx int, dests []int, payload *T)) {
	for i := range c.lines {
		if c.lines[i].valid {
			fn(i, c.lines[i].dests, &c.lines[i].payload)
		}
	}
}
