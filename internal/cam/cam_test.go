package cam

import (
	"testing"
	"testing/quick"
)

type payload struct {
	cfq  int
	stop bool
}

func TestAllocMatchFree(t *testing.T) {
	c := New[payload](2)
	if c.Size() != 2 || c.FreeLines() != 2 {
		t.Fatalf("size=%d free=%d", c.Size(), c.FreeLines())
	}
	i := c.Alloc([]int{4}, payload{cfq: 0})
	if i != 0 {
		t.Fatalf("first alloc = %d, want 0", i)
	}
	j := c.Alloc([]int{9}, payload{cfq: 1})
	if j != 1 {
		t.Fatalf("second alloc = %d, want 1", j)
	}
	if c.FreeLines() != 0 {
		t.Fatal("free lines after full alloc")
	}
	// Third congestion tree: CAM exhausted (the FBICM flaw).
	if k := c.Alloc([]int{12}, payload{}); k != -1 {
		t.Fatalf("overflow alloc = %d, want -1", k)
	}
	if c.Match(4) != 0 || c.Match(9) != 1 || c.Match(12) != -1 {
		t.Fatal("match broken")
	}
	c.Free(0)
	if c.Match(4) != -1 {
		t.Fatal("freed line still matches")
	}
	if k := c.Alloc([]int{12}, payload{}); k != 0 {
		t.Fatalf("realloc got line %d, want recycled 0", k)
	}
}

func TestPayloadInPlace(t *testing.T) {
	c := New[payload](1)
	i := c.Alloc([]int{7}, payload{cfq: 3})
	c.Payload(i).stop = true
	if !c.Payload(i).stop || c.Payload(i).cfq != 3 {
		t.Fatal("payload mutation lost")
	}
}

func TestAddDest(t *testing.T) {
	c := New[payload](1)
	i := c.Alloc([]int{1}, payload{})
	c.AddDest(i, 2)
	c.AddDest(i, 2) // dedup
	c.AddDest(i, 1) // dedup
	if got := c.Dests(i); len(got) != 2 {
		t.Fatalf("dests = %v, want [1 2]", got)
	}
	if c.Match(2) != i {
		t.Fatal("added dest does not match")
	}
}

func TestAllocCopiesDests(t *testing.T) {
	c := New[payload](1)
	ds := []int{5}
	i := c.Alloc(ds, payload{})
	ds[0] = 99
	if c.Match(5) != i || c.Match(99) != -1 {
		t.Fatal("CAM aliased the caller's destination slice")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	c := New[payload](1)
	i := c.Alloc([]int{1}, payload{})
	c.Free(i)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	c.Free(i)
}

func TestAccessFreedLinePanics(t *testing.T) {
	c := New[payload](1)
	i := c.Alloc([]int{1}, payload{})
	c.Free(i)
	for name, fn := range map[string]func(){
		"Payload": func() { c.Payload(i) },
		"Dests":   func() { c.Dests(i) },
		"AddDest": func() { c.AddDest(i, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on freed line did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEachVisitsOnlyValid(t *testing.T) {
	c := New[payload](4)
	c.Alloc([]int{1}, payload{})
	b := c.Alloc([]int{2}, payload{})
	c.Alloc([]int{3}, payload{})
	c.Free(b)
	var seen []int
	c.Each(func(idx int, dests []int, _ *payload) {
		seen = append(seen, dests[0])
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("Each visited %v", seen)
	}
}

func TestValidBounds(t *testing.T) {
	c := New[payload](2)
	if c.Valid(-1) || c.Valid(2) || c.Valid(0) {
		t.Fatal("Valid wrong on empty CAM / out of range")
	}
	i := c.Alloc([]int{1}, payload{})
	if !c.Valid(i) {
		t.Fatal("Valid false for allocated line")
	}
}

// Property: alloc/free churn never corrupts match results against a
// model map.
func TestCAMMatchesModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New[int](4)
		model := map[int]int{} // dest -> line
		for _, op := range ops {
			dest := int(op % 16)
			if op%2 == 0 {
				if _, ok := model[dest]; ok {
					continue
				}
				idx := c.Alloc([]int{dest}, dest)
				if len(model) < 4 {
					if idx < 0 {
						return false
					}
					model[dest] = idx
				} else if idx != -1 {
					return false
				}
			} else {
				if idx, ok := model[dest]; ok {
					c.Free(idx)
					delete(model, dest)
				}
			}
			for d := 0; d < 16; d++ {
				idx, ok := model[d]
				if got := c.Match(d); (ok && got != idx) || (!ok && got != -1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
