// Package switchfab implements the input-queued switch of the paper's
// simulation model (Table I): per-input-port RAM organised by a
// pluggable queue discipline (1Q, VOQsw, VOQnet, DBBM or the
// FBICM/CCFIT NFQ+CFQ isolation unit), an iSLIP-scheduled crossbar,
// virtual cut-through forwarding with credit-based flow control, output
// CAMs for congestion-information propagation, and FECN marking at
// output ports in the congestion state.
package switchfab

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// Stats aggregates switch-level counters for the evaluation.
type Stats struct {
	Forwarded      int
	ForwardedBytes int
	Marked         int
	CreditStalls   int // arbitration requests suppressed by missing credits
}

// Switch is one input-queued switch.
type Switch struct {
	eng    *sim.Engine
	p      *core.Params
	id     int
	name   string
	nports int
	xbar   int // crossbar bytes/cycle per port
	route  func(dest int) int
	// lookahead maps (local output port, dest) to the output port the
	// packet will request at the neighbor (OBQA queue assignment).
	lookahead func(out, dest int) int

	in    []*inPort
	out   []*outPort
	islip *arbiter.ISlip
	stats Stats

	// stalledUntil is the fault injector's arbitration freeze: while
	// now < stalledUntil the switch skips arbitration entirely (queues
	// fill, credits stop flowing downstream) — the scripted model of a
	// wedged scheduler. Zero (the default) never stalls.
	stalledUntil sim.Cycle

	// per-cycle scratch: candidate request per (input, output)
	cand [][]core.Request
	has  [][]bool

	// iSLIP request/priority predicates over cand/has, built once so
	// arbitration does not allocate two closures per cycle.
	matchHas, matchPrio func(i, o int) bool

	// Tick handles: the switch sleeps while every input discipline is
	// quiescent and every output stage is empty (nothing queued, nothing
	// crossing the crossbar, no CAM housekeeping pending).
	hPost, hArb, hUpd *sim.TickerHandle
}

type inPort struct {
	s         *Switch
	idx       int
	disc      core.QDisc
	busyUntil sim.Cycle
	rr        *arbiter.RoundRobin // among this port's queues for one output
	reqs      []core.Request      // per-cycle scratch
}

type outPort struct {
	s       *Switch
	idx     int
	tx      *link.Half // nil when the port is unconnected
	credits *core.CreditPool
	cam     *core.OutCAM
	mark    *core.MarkState
	// Output stage: a small buffer decoupling the crossbar (which can
	// run faster than the link, Table I: 5 GB/s crossbar over 2.5 GB/s
	// links in Config #1) from link serialization. inflight counts
	// crossbar transfers that have started but not yet landed here;
	// inflightBytes mirrors it in bytes for the conservation ledger.
	stage         []staged
	inflight      int
	inflightBytes int
}

type staged struct {
	p   *pkt.Packet
	cfq int
}

// stageCap bounds staged + in-flight packets per output port.
const stageCap = 2

// New builds a switch with nports bidirectional ports. routeFn maps a
// destination endpoint to the local output port. numEndpoints sizes
// VOQnet disciplines. xbarBPC is the crossbar bandwidth in bytes/cycle
// per port (Table I "Crossbar BW"); it bounds how fast a packet moves
// from an input queue to an output stage and therefore how much
// aggregate traffic one input port can forward.
func New(eng *sim.Engine, id int, name string, nports int, p *core.Params, routeFn func(int) int, numEndpoints, xbarBPC int) *Switch {
	if nports <= 0 {
		panic("switchfab: switch needs ports")
	}
	if xbarBPC <= 0 {
		panic("switchfab: crossbar bandwidth must be positive")
	}
	s := &Switch{
		eng:    eng,
		p:      p,
		id:     id,
		name:   name,
		nports: nports,
		xbar:   xbarBPC,
		route:  routeFn,
		islip:  arbiter.NewISlip(nports, nports, p.ISlipIters),
	}
	s.in = make([]*inPort, nports)
	s.out = make([]*outPort, nports)
	for i := 0; i < nports; i++ {
		ip := &inPort{s: s, idx: i}
		ip.disc = core.NewQDisc(p, portEnv{s: s, port: i}, nports, numEndpoints)
		ip.rr = arbiter.NewRoundRobin(ip.disc.QueueCount())
		if iso, ok := ip.disc.(*core.IsolationUnit); ok {
			iso.SetTraceLabel(fmt.Sprintf("%s:p%d", name, i))
		}
		s.in[i] = ip
		s.out[i] = &outPort{
			s:    s,
			idx:  i,
			cam:  core.NewOutCAM(p.NumCFQs),
			mark: core.NewMarkState(p, eng.RNG(), eng, fmt.Sprintf("%s:p%d", name, i)),
		}
	}
	s.cand = make([][]core.Request, nports)
	s.has = make([][]bool, nports)
	for i := range s.cand {
		s.cand[i] = make([]core.Request, nports)
		s.has[i] = make([]bool, nports)
	}
	s.matchHas = func(i, o int) bool { return s.has[i][o] }
	s.matchPrio = func(i, o int) bool { return s.has[i][o] && s.cand[i][o].Priority }
	s.hPost = eng.AddTicker(sim.PhasePost, sim.TickerFunc(s.post))
	s.hArb = eng.AddTicker(sim.PhaseArbitrate, sim.TickerFunc(s.arbitrate))
	s.hUpd = eng.AddTicker(sim.PhaseUpdate, sim.TickerFunc(s.update))
	return s
}

// wake puts the switch back on the engine's active lists (idempotent).
func (s *Switch) wake() {
	s.hPost.Wake()
	s.hArb.Wake()
	s.hUpd.Wake()
}

// idle reports whether every tick would be a no-op: all input
// disciplines quiescent, no staged or in-flight crossbar transfers.
// Credit and CAM control arrivals are handled inline by ReceiveControl
// and need no ticks, so they do not keep a switch awake.
func (s *Switch) idle() bool {
	for _, op := range s.out {
		if len(op.stage) > 0 || op.inflight > 0 {
			return false
		}
	}
	for _, ip := range s.in {
		if !ip.disc.Quiescent() {
			return false
		}
	}
	return true
}

// ID returns the switch's device id.
func (s *Switch) ID() int { return s.id }

// Name returns the diagnostic name.
func (s *Switch) Name() string { return s.name }

// Stats returns the switch counters.
func (s *Switch) Stats() *Stats { return &s.stats }

// InputDisc exposes port i's queue discipline (diagnostics, tests).
func (s *Switch) InputDisc(i int) core.QDisc { return s.in[i].disc }

// OutCAM exposes port i's output CAM (diagnostics, tests).
func (s *Switch) OutCAM(i int) *core.OutCAM { return s.out[i].cam }

// MarkState exposes port i's congestion/marking state (diagnostics).
func (s *Switch) MarkState(i int) *core.MarkState { return s.out[i].mark }

// Credits returns output port i's credit balance toward dest (tests).
func (s *Switch) Credits(i, dest int) int { return s.out[i].credits.Avail(dest) }

// AttachLink wires port i: tx is the transmit direction toward the
// neighbor, credits the pool mirroring the neighbor's receive buffers.
func (s *Switch) AttachLink(i int, tx *link.Half, credits *core.CreditPool) {
	if s.out[i].tx != nil {
		panic(fmt.Sprintf("switchfab: %s port %d already attached", s.name, i))
	}
	s.out[i].tx = tx
	s.out[i].credits = credits
}

// SetLookahead installs the next-hop routing oracle used by the OBQA
// discipline. Must be called before traffic arrives; without it OBQA
// degenerates to a single queue.
func (s *Switch) SetLookahead(fn func(out, dest int) int) { s.lookahead = fn }

// PacketReceiver returns the sink for packets arriving at port i.
func (s *Switch) PacketReceiver(i int) link.PacketReceiver { return s.in[i] }

// ControlReceiver returns the sink for control arriving at port i.
func (s *Switch) ControlReceiver(i int) link.ControlReceiver { return s.out[i] }

// post runs the per-port post-processing phase.
func (s *Switch) post(now sim.Cycle) {
	for _, ip := range s.in {
		ip.disc.Post(now)
	}
}

// update runs the per-port housekeeping phase, then sleeps the switch
// when it is provably idle; packet arrivals wake it again.
func (s *Switch) update(now sim.Cycle) {
	for _, ip := range s.in {
		ip.disc.Update(now)
	}
	if s.idle() {
		s.hPost.Sleep()
		s.hArb.Sleep()
		s.hUpd.Sleep()
	}
}

// arbitrate drains output stages onto their links, then collects
// eligible requests, runs iSLIP, and starts the granted crossbar
// transfers.
func (s *Switch) arbitrate(now sim.Cycle) {
	if now < s.stalledUntil {
		return
	}
	for _, op := range s.out {
		op.drain(now)
	}
	anyReq := false
	for i, ip := range s.in {
		for o := range s.has[i] {
			s.has[i][o] = false
		}
		if ip.busyUntil > now || ip.disc.UsedBytes() == 0 {
			continue
		}
		ip.reqs = ip.reqs[:0]
		//lint:ignore hotpath-alloc visitor closure is non-escaping (Requests only calls it); gc stack-allocates it
		ip.disc.Requests(now, func(r core.Request) { ip.reqs = append(ip.reqs, r) })
		for _, r := range ip.reqs {
			op := s.out[r.Out]
			if op.tx == nil || len(op.stage)+op.inflight >= stageCap {
				continue
			}
			if op.credits.Avail(r.Pkt.Dst) < r.Pkt.Size {
				s.stats.CreditStalls++
				continue
			}
			// Keep the strongest candidate per (input, output):
			// priority first, then this input's queue round-robin.
			if !s.has[i][r.Out] || s.better(ip, r, s.cand[i][r.Out]) {
				s.cand[i][r.Out] = r
				s.has[i][r.Out] = true
			}
			anyReq = true
		}
	}
	if !anyReq {
		return
	}
	match := s.islip.Match(s.matchHas, s.matchPrio)
	for i, o := range match {
		if o == -1 {
			continue
		}
		s.start(now, s.in[i], s.out[o], s.cand[i][o])
	}
	// A transfer completing this cycle may have landed in an idle
	// stage; push it out without waiting a cycle.
	for _, op := range s.out {
		op.drain(now)
	}
}

// drain puts the next staged packet on the wire if the link is idle.
func (op *outPort) drain(now sim.Cycle) {
	if op.tx == nil || len(op.stage) == 0 || !op.tx.Free(now) {
		return
	}
	st := op.stage[0]
	copy(op.stage, op.stage[1:])
	op.stage = op.stage[:len(op.stage)-1]
	op.tx.Send(now, st.p, st.cfq)
}

// better reports whether request a should replace b as input ip's
// candidate for one output: priority first, then the port's queue
// round-robin order (fairness between the NFQ and CFQs sharing an
// output, without advancing the pointer until a queue is served).
func (s *Switch) better(ip *inPort, a, b core.Request) bool {
	if a.Priority != b.Priority {
		return a.Priority
	}
	return ip.rr.Closer(a.QID, b.QID)
}

// start launches one granted crossbar transfer: the packet leaves the
// input queue, crosses the crossbar in size/xbar cycles, and lands in
// the output stage for link serialization.
func (s *Switch) start(now sim.Cycle, ip *inPort, op *outPort, r core.Request) {
	p := ip.disc.Pop(r.QID)
	if p != r.Pkt {
		panic(fmt.Sprintf("switchfab: %s popped %v, granted %v", s.name, p, r.Pkt))
	}
	ip.rr.Served(r.QID)
	op.credits.Take(p.Dst, p.Size)
	if op.mark.MaybeMark(p) {
		s.stats.Marked++
	}
	xfer := sim.Cycle((p.Size + s.xbar - 1) / s.xbar)
	ip.busyUntil = now + xfer
	op.inflight++
	op.inflightBytes += p.Size
	cfq := r.DirectCFQ
	//lint:ignore hotpath-alloc transfer-completion event: this scheduling closure is the one allocation per crossbar launch PR 2's overhaul budgeted for
	s.eng.At(now+xfer, func() {
		op.inflight--
		op.inflightBytes -= p.Size
		//lint:ignore hotpath-alloc staged{} is a two-word value appended into the field-backed stage ring; no heap allocation
		op.stage = append(op.stage, staged{p: p, cfq: cfq})
		s.wake() // defensive: the staged packet needs drain ticks
	})
	s.stats.Forwarded++
	s.stats.ForwardedBytes += p.Size
	// The packet left this input port's RAM: return credit upstream.
	// Port ip.idx's transmit half reaches the upstream neighbor.
	if up := s.out[ip.idx].tx; up != nil {
		//lint:ignore hotpath-alloc link.Control is a value struct passed by value; no heap allocation
		up.SendControl(now, link.Control{Kind: link.Credit, Bytes: p.Size, Dest: p.Dst})
	}
}

// Stall freezes arbitration (grants, drains, crossbar launches) for d
// cycles from now — the fault model of a wedged scheduler. Overlapping
// stalls extend to the farthest horizon. Arrivals are still admitted
// (they only queue), so buffers fill and backpressure propagates
// upstream exactly as a real hung switch would cause.
func (s *Switch) Stall(d sim.Cycle) {
	if until := s.eng.Now() + d; until > s.stalledUntil {
		s.stalledUntil = until
	}
}

// StalledUntil returns the cycle arbitration resumes (0 = never stalled).
func (s *Switch) StalledUntil() sim.Cycle { return s.stalledUntil }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return s.nports }

// TxHalf returns port i's transmit direction (nil when unconnected).
func (s *Switch) TxHalf(i int) *link.Half { return s.out[i].tx }

// CreditPoolAt returns port i's credit pool toward its neighbor (nil
// when unconnected) — the invariant checker bounds it by capacity.
func (s *Switch) CreditPoolAt(i int) *core.CreditPool { return s.out[i].credits }

// BufferedBytes returns every byte the switch currently holds: input
// RAM, crossbar transfers in flight, and output stages. This is the
// switch's term in the packet-conservation ledger.
func (s *Switch) BufferedBytes() int {
	b := 0
	for _, ip := range s.in {
		b += ip.disc.UsedBytes()
	}
	for _, op := range s.out {
		b += op.inflightBytes
		for _, st := range op.stage {
			b += st.p.Size
		}
	}
	return b
}

// DescribeBlocked reports, one line per queued input port, why its
// arbitration requests cannot be granted right now — the heart of the
// watchdog's deadlock diagnostic. An empty slice means nothing is
// queued anywhere on the switch.
func (s *Switch) DescribeBlocked(now sim.Cycle) []string {
	var out []string
	stalled := ""
	if now < s.stalledUntil {
		stalled = fmt.Sprintf(" [switch stalled until %d]", s.stalledUntil)
	}
	for i, ip := range s.in {
		if ip.disc.UsedBytes() == 0 {
			continue
		}
		line := fmt.Sprintf("%s p%d in: %dB queued%s", s.name, i, ip.disc.UsedBytes(), stalled)
		if ip.busyUntil > now {
			line += fmt.Sprintf("; crossbar busy until %d", ip.busyUntil)
		}
		nreq := 0
		ip.disc.Requests(now, func(r core.Request) {
			nreq++
			line += "; " + s.describeRequest(now, r)
		})
		if nreq == 0 {
			line += "; no eligible request (queues stopped or heads gated)"
		}
		out = append(out, line)
	}
	return out
}

// describeRequest explains one candidate's fate against its output.
func (s *Switch) describeRequest(now sim.Cycle, r core.Request) string {
	op := s.out[r.Out]
	head := fmt.Sprintf("head %s wants out%d:", r.Pkt, r.Out)
	switch {
	case op.tx == nil:
		return head + " output unconnected"
	case len(op.stage)+op.inflight >= stageCap:
		return head + " output stage full"
	case op.credits.Avail(r.Pkt.Dst) < r.Pkt.Size:
		return fmt.Sprintf("%s no credits (have %d, need %d)", head, op.credits.Avail(r.Pkt.Dst), r.Pkt.Size)
	case op.tx.Down():
		return head + " link down"
	case !op.tx.Free(now):
		return fmt.Sprintf("%s link busy until %d", head, op.tx.FreeAt())
	default:
		return head + " grantable"
	}
}

// ReceivePacket implements link.PacketReceiver for an input port.
func (ip *inPort) ReceivePacket(p *pkt.Packet, cfq int) {
	ip.s.wake()
	ip.disc.Enqueue(p, cfq)
}

// ReceiveControl implements link.ControlReceiver for an output port:
// credits and the downstream CFQ protocol.
func (op *outPort) ReceiveControl(m link.Control) {
	if m.Kind == link.Credit {
		op.credits.Give(m.Dest, m.Bytes)
		return
	}
	op.cam.Handle(m)
	if m.Kind == link.CFQAlloc {
		// The congested point is now known to be at least one hop
		// below: input CFQs feeding this output stop being tree roots.
		for _, ip := range op.s.in {
			if iso, ok := ip.disc.(*core.IsolationUnit); ok {
				iso.DemoteRoot(op.idx, m.Dests)
			}
		}
	}
}

// portEnv adapts a switch port to core.PortEnv.
type portEnv struct {
	s    *Switch
	port int
}

func (e portEnv) Route(dest int) int { return e.s.route(dest) }

func (e portEnv) OutLine(out, dest int) (bool, int, bool) {
	return e.s.out[out].cam.Lookup(dest)
}

func (e portEnv) OutCredits(out, dest int) int {
	op := e.s.out[out]
	if op.tx == nil {
		return 0
	}
	return op.credits.Avail(dest)
}

func (e portEnv) NotifyUpstream(m link.Control) {
	if tx := e.s.out[e.port].tx; tx != nil {
		tx.SendControl(e.s.eng.Now(), m)
	}
}

func (e portEnv) MarkCrossed(out int, above bool) {
	e.s.out[out].mark.Crossed(above)
}

func (e portEnv) Lookahead(out, dest int) int {
	if e.s.lookahead == nil {
		return 0
	}
	return e.s.lookahead(out, dest)
}
