package switchfab

import (
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// peer records what a switch port sends out.
type peer struct {
	pkts []*pkt.Packet
	cfqs []int
	at   []sim.Cycle
	ctls []link.Control
	eng  *sim.Engine
}

func (p *peer) ReceivePacket(q *pkt.Packet, cfq int) {
	p.pkts = append(p.pkts, q)
	p.cfqs = append(p.cfqs, cfq)
	p.at = append(p.at, p.eng.Now())
}
func (p *peer) ReceiveControl(m link.Control) { p.ctls = append(p.ctls, m) }

// rig builds one switch with nports ports, each wired to a recording
// peer with the given credit bytes; routing sends dest d out port d.
func rig(t *testing.T, params core.Params, nports, xbar, credits int) (*sim.Engine, *Switch, []*peer) {
	t.Helper()
	eng := sim.NewEngine(9)
	sw := New(eng, 100, "sw", nports, &params, func(d int) int { return d % nports }, 16, xbar)
	peers := make([]*peer, nports)
	for i := range peers {
		peers[i] = &peer{eng: eng}
		tx := link.NewHalf(eng, "p", 64, 2)
		tx.SetReceivers(peers[i], peers[i])
		sw.AttachLink(i, tx, core.NewSharedCredits(credits))
	}
	return eng, sw, peers
}

func TestForwardsByRoute(t *testing.T) {
	eng, sw, peers := rig(t, core.Preset1Q(), 3, 64, 64<<10)
	var g pkt.IDGen
	sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 2, 0, pkt.MTU, 0), -1)
	eng.Run(200)
	if len(peers[1].pkts) != 1 || peers[1].pkts[0].Dst != 1 {
		t.Fatalf("port 1 got %v", peers[1].pkts)
	}
	if len(peers[2].pkts) != 1 || peers[2].pkts[0].Dst != 2 {
		t.Fatalf("port 2 got %v", peers[2].pkts)
	}
	if sw.Stats().Forwarded != 2 || sw.Stats().ForwardedBytes != 2*pkt.MTU {
		t.Fatalf("stats %+v", sw.Stats())
	}
}

func TestCreditReturnOnForward(t *testing.T) {
	eng, sw, peers := rig(t, core.Preset1Q(), 2, 64, 64<<10)
	var g pkt.IDGen
	sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	eng.Run(100)
	// The upstream neighbor on port 0 must get a credit for the MTU.
	found := false
	for _, c := range peers[0].ctls {
		if c.Kind == link.Credit && c.Bytes == pkt.MTU && c.Dest == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no credit return; ctls=%v", peers[0].ctls)
	}
}

func TestCreditExhaustionBlocks(t *testing.T) {
	eng, sw, peers := rig(t, core.Preset1Q(), 2, 64, 2*pkt.MTU)
	var g pkt.IDGen
	for i := 0; i < 5; i++ {
		sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	}
	eng.Run(2000)
	if len(peers[1].pkts) != 2 {
		t.Fatalf("forwarded %d with 2 MTUs of credit, want 2", len(peers[1].pkts))
	}
	if sw.Stats().CreditStalls == 0 {
		t.Fatal("credit stalls not counted")
	}
	// Return one credit; one more packet goes.
	sw.ControlReceiver(1).ReceiveControl(link.Control{Kind: link.Credit, Bytes: pkt.MTU, Dest: 1})
	eng.RunFor(200)
	if len(peers[1].pkts) != 3 {
		t.Fatalf("forwarded %d after credit return", len(peers[1].pkts))
	}
}

func TestCrossbarSpeedupForwardsFasterThanLink(t *testing.T) {
	// With crossbar at 2x the link rate, one input port can keep two
	// output links busy simultaneously (the Config #1 situation).
	var g pkt.IDGen
	run := func(xbar int) sim.Cycle {
		eng, sw, peers := rig(t, core.Preset1Q(), 3, xbar, 64<<10)
		for i := 0; i < 4; i++ {
			sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
			sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 2, 0, pkt.MTU, 0), -1)
		}
		eng.Run(2000)
		if len(peers[1].pkts) != 4 || len(peers[2].pkts) != 4 {
			t.Fatalf("xbar=%d: forwarded %d/%d", xbar, len(peers[1].pkts), len(peers[2].pkts))
		}
		last := peers[1].at[3]
		if peers[2].at[3] > last {
			last = peers[2].at[3]
		}
		return last
	}
	slow := run(64)
	fast := run(128)
	if fast >= slow {
		t.Fatalf("speedup 2 (%d cycles) not faster than speedup 1 (%d)", fast, slow)
	}
}

func TestRRFairnessAcrossInputs(t *testing.T) {
	// Three inputs contending for one output get equal service.
	eng, sw, peers := rig(t, core.Preset1Q(), 4, 64, 1<<20)
	var g pkt.IDGen
	for in := 0; in < 3; in++ {
		for i := 0; i < 30; i++ {
			sw.PacketReceiver(in).ReceivePacket(pkt.NewData(&g, in, 3, in, pkt.MTU, 0), -1)
		}
	}
	eng.Run(32 * 45) // time for ~45 MTUs on the output link
	counts := map[int]int{}
	for _, p := range peers[3].pkts {
		counts[p.Flow]++
	}
	total := len(peers[3].pkts)
	if total < 40 {
		t.Fatalf("only %d forwarded", total)
	}
	for f, c := range counts {
		share := float64(c) / float64(total)
		if share < 0.28 || share > 0.39 {
			t.Fatalf("input %d got share %.2f of the output (%v)", f, share, counts)
		}
	}
}

func TestFECNMarkingAtCongestedPort(t *testing.T) {
	p := core.PresetITh()
	p.MarkingRate = 1.0
	eng, sw, peers := rig(t, p, 2, 64, 1<<20)
	var g pkt.IDGen
	// Build a standing VOQ above High to enter the congestion state.
	for i := 0; i < 12; i++ {
		sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	}
	eng.Run(3000)
	if sw.Stats().Marked == 0 {
		t.Fatal("no packets marked")
	}
	marked := 0
	for _, q := range peers[1].pkts {
		if q.FECN {
			marked++
		}
	}
	if marked != sw.Stats().Marked {
		t.Fatalf("marked stat %d but %d FECN packets on the wire", sw.Stats().Marked, marked)
	}
}

func TestNoMarkingWithoutCongestion(t *testing.T) {
	p := core.PresetITh()
	p.MarkingRate = 1.0
	eng, sw, peers := rig(t, p, 2, 64, 1<<20)
	var g pkt.IDGen
	// A trickle that never crosses the High threshold.
	for i := 0; i < 3; i++ {
		sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	}
	eng.Run(1000)
	for _, q := range peers[1].pkts {
		if q.FECN {
			t.Fatal("packet marked without congestion")
		}
	}
}

func TestCFQProtocolAllocStopGoDealloc(t *testing.T) {
	// The switch's output CAM mirrors downstream CFQ state and gates
	// isolated traffic: after a CFQAlloc+CFQStop from downstream, the
	// matching packets are held; CFQGo releases them with the direct
	// CFQ tag; CFQDealloc removes the line.
	params := core.PresetFBICM()
	eng, sw, peers := rig(t, params, 2, 64, 1<<20)
	var g pkt.IDGen
	// Downstream (peer of port 1) announces its CFQ 1 for dest 1.
	sw.ControlReceiver(1).ReceiveControl(link.Control{Kind: link.CFQAlloc, CFQ: 1, Dests: []int{1}})
	sw.ControlReceiver(1).ReceiveControl(link.Control{Kind: link.CFQStop, CFQ: 1})
	for i := 0; i < 6; i++ {
		sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	}
	eng.Run(2000)
	// Packets to dest 1 are isolated at input 0 (lazy alloc via the
	// out CAM) and then held by Stop.
	if got := len(peers[1].pkts); got > 1 {
		t.Fatalf("%d packets escaped a stopped CFQ", got)
	}
	iso := sw.InputDisc(0).(*core.IsolationUnit)
	if iso.ActiveLines() != 1 {
		t.Fatalf("input CFQ not allocated (lines=%d)", iso.ActiveLines())
	}
	// Go: traffic resumes, tagged for direct CFQ delivery.
	sw.ControlReceiver(1).ReceiveControl(link.Control{Kind: link.CFQGo, CFQ: 1})
	eng.RunFor(2000)
	if len(peers[1].pkts) != 6 {
		t.Fatalf("forwarded %d after Go, want 6", len(peers[1].pkts))
	}
	direct := 0
	for _, c := range peers[1].cfqs {
		if c == 1 {
			direct++
		}
	}
	if direct == 0 {
		t.Fatal("no direct CFQ-to-CFQ deliveries")
	}
	sw.ControlReceiver(1).ReceiveControl(link.Control{Kind: link.CFQDealloc, CFQ: 1})
	if sw.OutCAM(1).ActiveLines() != 0 {
		t.Fatal("out CAM line not removed")
	}
}

func TestDemoteRootOnDownstreamAlloc(t *testing.T) {
	params := core.PresetCCFIT()
	eng, sw, _ := rig(t, params, 2, 64, 1<<20)
	var g pkt.IDGen
	// Local detection first: input 0 sees a hot flow to dest 1.
	for i := 0; i < 8; i++ {
		sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 64), -1)
	}
	eng.Run(50)
	iso := sw.InputDisc(0).(*core.IsolationUnit)
	line, _, ok := iso.LineInfo(0)
	if !ok || !line.Root {
		t.Skipf("no root line formed (line=%+v ok=%v)", line, ok)
	}
	// Downstream announces its own CFQ for the tree: our line demotes.
	sw.ControlReceiver(1).ReceiveControl(link.Control{Kind: link.CFQAlloc, CFQ: 0, Dests: []int{1}})
	line, _, _ = iso.LineInfo(0)
	if line.Root {
		t.Fatal("line still root after downstream alloc")
	}
}

func TestBECNPriorityThroughSwitch(t *testing.T) {
	// A BECN arriving behind data at one input beats data from another
	// input contending for the same output.
	eng, sw, peers := rig(t, core.PresetITh(), 3, 64, 1<<20)
	var g pkt.IDGen
	for i := 0; i < 8; i++ {
		sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 2, 0, pkt.MTU, 0), -1)
	}
	becn := pkt.NewBECN(&g, 1, 2, 1, 0)
	sw.PacketReceiver(1).ReceivePacket(becn, -1)
	eng.Run(32 * 3)
	// Within the first few served packets the BECN must appear.
	for i, q := range peers[2].pkts {
		if q.Kind == pkt.BECN {
			if i > 1 {
				t.Fatalf("BECN served %dth", i)
			}
			return
		}
	}
	t.Fatalf("BECN not among first served: %v", peers[2].pkts)
}

func TestUnconnectedPortTolerated(t *testing.T) {
	// Fat-tree top-level switches leave up-ports unattached; the
	// switch must simply never use them.
	eng := sim.NewEngine(9)
	params := core.Preset1Q()
	sw := New(eng, 100, "sw", 4, &params, func(d int) int { return d % 2 }, 16, 64)
	p0 := &peer{eng: eng}
	tx0 := link.NewHalf(eng, "p0", 64, 2)
	tx0.SetReceivers(p0, p0)
	sw.AttachLink(0, tx0, core.NewSharedCredits(1<<20))
	p1 := &peer{eng: eng}
	tx1 := link.NewHalf(eng, "p1", 64, 2)
	tx1.SetReceivers(p1, p1)
	sw.AttachLink(1, tx1, core.NewSharedCredits(1<<20))
	var g pkt.IDGen
	sw.PacketReceiver(0).ReceivePacket(pkt.NewData(&g, 9, 1, 0, pkt.MTU, 0), -1)
	eng.Run(100)
	if len(p1.pkts) != 1 {
		t.Fatal("switch with unconnected ports failed to forward")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	eng, sw, _ := rig(t, core.Preset1Q(), 2, 64, 1024)
	defer func() {
		if recover() == nil {
			t.Fatal("double attach accepted")
		}
	}()
	tx := link.NewHalf(eng, "x", 64, 1)
	sw.AttachLink(0, tx, core.NewSharedCredits(1024))
}

func TestConstructorValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	params := core.Preset1Q()
	for _, fn := range []func(){
		func() { New(eng, 1, "x", 0, &params, func(int) int { return 0 }, 4, 64) },
		func() { New(eng, 1, "x", 2, &params, func(int) int { return 0 }, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad construction accepted")
				}
			}()
			fn()
		}()
	}
}
