package campaign

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, opt Options) (*Scheduler, *Client) {
	t.Helper()
	s := openScheduler(t, t.TempDir(), opt)
	ts := httptest.NewServer(NewServer(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// TestHTTPRoundTrip drives the full remote path a CLI uses: healthz,
// submit over HTTP, stream events to completion, fetch results, and
// verify they are byte-identical to a local serial run.
func TestHTTPRoundTrip(t *testing.T) {
	_, client := testServer(t, Options{Workers: 4})
	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}

	sub := Submission{Spec: quickSpec()}
	jobs, err := sub.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	results, err := client.Run(ctx, sub, func(ev Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	if got, want := resultsDigest(t, results), localDigest(t, sub); got != want {
		t.Errorf("HTTP round-trip digest %s != local digest %s", got, want)
	}
	if len(events) == 0 || events[0].Type != "snapshot" {
		t.Errorf("stream did not open with a snapshot: %+v", events)
	}
	last := events[len(events)-1]
	if last.Type != "complete" || last.Status != StatusDone {
		t.Errorf("stream did not close with complete/done: %+v", last)
	}
}

// TestHTTPStatusAndList covers the read-side endpoints and their
// error shapes.
func TestHTTPStatusAndList(t *testing.T) {
	_, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()

	v, err := client.Submit(ctx, Submission{Spec: quickSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	got, err := client.Status(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || len(got.Jobs) != got.Total {
		t.Errorf("status view = %+v, want done with %d job rows", got, got.Total)
	}

	if _, err := client.Status(ctx, "c424242"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown id: %v, want 404", err)
	}
	if _, err := client.Cancel(ctx, "c424242"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("cancel unknown id: %v, want 404", err)
	}
}

// TestHTTPRejectsBadSubmission: malformed JSON and invalid specs are
// 400s, and unknown fields are rejected (catching client/server schema
// drift early).
func TestHTTPRejectsBadSubmission(t *testing.T) {
	_, client := testServer(t, Options{Workers: 1})
	ctx := context.Background()

	bad := quickSpec()
	bad.Experiments = []string{"nope"}
	if _, err := client.Submit(ctx, Submission{Spec: bad}); err == nil {
		t.Error("invalid spec accepted")
	}

	for _, body := range []string{"{not json", `{"unknown_field": 1}`} {
		resp, err := client.http().Post(client.url("/campaigns"), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q -> %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHTTPMetrics: the counters endpoint reflects real activity.
func TestHTTPMetrics(t *testing.T) {
	_, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()
	if _, err := client.Run(ctx, Submission{Spec: quickSpec()}, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := client.http().Get(client.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"campaigns_submitted", "jobs_done", "cache_hit_rate", "worker_utilization", "queue_depth", "workers"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, m)
		}
	}
	if got, _ := m["campaigns_completed"].(float64); got != 1 {
		t.Errorf("campaigns_completed = %v, want 1", m["campaigns_completed"])
	}
}

// TestHTTPEventStreamTerminalSnapshot: subscribing to a finished
// campaign immediately yields snapshot + complete and closes.
func TestHTTPEventStreamTerminalSnapshot(t *testing.T) {
	_, client := testServer(t, Options{Workers: 2})
	ctx := context.Background()
	v, err := client.Submit(ctx, Submission{Spec: quickSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	var types []string
	if err := client.Events(sctx, v.ID, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != "snapshot" || types[1] != "complete" {
		t.Errorf("terminal stream = %v, want [snapshot complete]", types)
	}
}
