package campaign

import (
	"sync/atomic"
	"time"
)

// Metrics are the service's expvar-style counters, exposed as JSON at
// /metrics. All fields are monotonic counters except the gauges the
// scheduler derives live (queue depth, busy workers).
type Metrics struct {
	start   time.Time
	workers int

	CampaignsSubmitted atomic.Int64
	CampaignsResumed   atomic.Int64
	CampaignsCompleted atomic.Int64
	CampaignsCancelled atomic.Int64

	JobsEnqueued    atomic.Int64
	JobsDone        atomic.Int64 // fresh simulations that finished ok
	JobsCached      atomic.Int64 // served from the shared result cache
	JobsFailed      atomic.Int64
	JobsQuarantined atomic.Int64
	JobsCancelled   atomic.Int64
	JobsRetried     atomic.Int64

	// JournalErrors counts failed journal/index writes: durability is
	// degraded (a crash may re-run work) but service continues.
	JournalErrors atomic.Int64

	// busyNS accumulates worker wall-clock spent executing jobs; the
	// utilization gauge divides it by workers × uptime.
	busyNS      atomic.Int64
	busyWorkers atomic.Int64
}

// NewMetrics starts a metrics set for a pool of `workers` workers.
func NewMetrics(workers int) *Metrics {
	return &Metrics{start: time.Now(), workers: workers}
}

// Snapshot renders the counters plus derived gauges. queueDepth is the
// scheduler's current queue length (passed in so Metrics itself stays
// lock-free).
func (m *Metrics) Snapshot(queueDepth int) map[string]any {
	uptime := time.Since(m.start)
	done := m.JobsDone.Load()
	cached := m.JobsCached.Load()
	hitRate := 0.0
	if done+cached > 0 {
		hitRate = float64(cached) / float64(done+cached)
	}
	util := 0.0
	if m.workers > 0 && uptime > 0 {
		util = float64(m.busyNS.Load()) / (float64(uptime.Nanoseconds()) * float64(m.workers))
	}
	return map[string]any{
		"uptime_seconds":      uptime.Seconds(),
		"workers":             m.workers,
		"busy_workers":        m.busyWorkers.Load(),
		"worker_utilization":  util,
		"queue_depth":         queueDepth,
		"campaigns_submitted": m.CampaignsSubmitted.Load(),
		"campaigns_resumed":   m.CampaignsResumed.Load(),
		"campaigns_completed": m.CampaignsCompleted.Load(),
		"campaigns_cancelled": m.CampaignsCancelled.Load(),
		"jobs_enqueued":       m.JobsEnqueued.Load(),
		"jobs_done":           done,
		"jobs_cached":         cached,
		"jobs_failed":         m.JobsFailed.Load(),
		"jobs_quarantined":    m.JobsQuarantined.Load(),
		"jobs_cancelled":      m.JobsCancelled.Load(),
		"jobs_retried":        m.JobsRetried.Load(),
		"journal_errors":      m.JournalErrors.Load(),
		"cache_hit_rate":      hitRate,
	}
}

// jobTimer tracks one job's occupancy of a worker.
func (m *Metrics) jobTimer() func() {
	t0 := time.Now()
	m.busyWorkers.Add(1)
	return func() {
		m.busyWorkers.Add(-1)
		m.busyNS.Add(time.Since(t0).Nanoseconds())
	}
}
