package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// RemoteResult is the wire shape of one cell in
// GET /campaigns/{id}/results: the job identity, its outcome, and the
// full Result payload for finished cells. It exists so clients can
// reconstruct []runner.JobResult without gob.
type RemoteResult struct {
	Index       int             `json:"index"`
	Experiment  string          `json:"experiment"`
	Scheme      string          `json:"scheme"`
	Seed        int64           `json:"seed"`
	Status      JobStatus       `json:"status"`
	Cached      bool            `json:"cached"`
	Key         string          `json:"key,omitempty"`
	Attempts    int             `json:"attempts,omitempty"`
	Error       string          `json:"error,omitempty"`
	Quarantined bool            `json:"quarantined,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// NewServer wires the scheduler's HTTP+JSON surface:
//
//	POST   /campaigns            submit (body: Submission) -> 201 View
//	GET    /campaigns            list campaigns
//	GET    /campaigns/{id}       status + per-job states
//	GET    /campaigns/{id}/results  per-cell results (JSON)
//	GET    /campaigns/{id}/events   progress stream (JSON lines)
//	DELETE /campaigns/{id}       cancel
//	GET    /metrics              counters (JSON)
//	GET    /healthz              liveness
//
// When the scheduler carries a dispatch board, the worker protocol and
// fleet view mount alongside:
//
//	POST   /dispatch/{register,claim,heartbeat,result}  worker protocol
//	GET    /workers              connected worker fleet (JSON)
func NewServer(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	if b := s.Board(); b != nil {
		mux.Handle("POST /dispatch/", b.Handler())
		mux.HandleFunc("GET /workers", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, b.Workers())
		})
	}
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var sub Submission
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sub); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
			return
		}
		v, err := s.Submit(sub)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Location", "/campaigns/"+v.ID)
		writeJSON(w, http.StatusCreated, v)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.View(r.PathValue("id"), true)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		results, err := s.Results(id)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		out := make([]RemoteResult, len(results))
		v, _ := s.View(id, true)
		for i, jr := range results {
			rr := RemoteResult{
				Index: i, Scheme: jr.Job.Scheme, Seed: jr.Job.Seed,
				Cached: jr.Cached, Key: jr.Key, Attempts: jr.Attempts,
				Quarantined: jr.Quarantined,
			}
			rr.Experiment = jr.Job.ExpID
			if rr.Experiment == "" && jr.Job.Exp != nil {
				rr.Experiment = jr.Job.Exp.ID
			}
			if i < len(v.Jobs) {
				rr.Status = v.Jobs[i].Status
			}
			if jr.Err != nil {
				rr.Error = jr.Err.Error()
			}
			if jr.Result != nil {
				data, merr := json.Marshal(jr.Result)
				if merr != nil {
					httpError(w, http.StatusInternalServerError, merr)
					return
				}
				rr.Result = data
			}
			out[i] = rr
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		snap, ch, cancel, err := s.Subscribe(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		defer cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		send := func(ev Event) bool {
			if err := enc.Encode(ev); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
			return true
		}
		first := Event{Campaign: snap.ID, Type: "snapshot", Status: snap.Status,
			Done: snap.Done + snap.Cached + snap.Failed + snap.Cancelled, Total: snap.Total}
		if !send(first) {
			return
		}
		if snap.Status.Terminal() {
			send(Event{Campaign: snap.ID, Type: "complete", Status: snap.Status,
				Done: first.Done, Total: snap.Total})
			return
		}
		heartbeat := time.NewTicker(15 * time.Second)
		defer heartbeat.Stop()
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					// Scheduler drained mid-stream: report the current
					// status so the client can decide to poll.
					v, verr := s.View(snap.ID, false)
					if verr == nil {
						send(Event{Campaign: snap.ID, Type: "complete", Status: v.Status,
							Done: v.Done + v.Cached + v.Failed + v.Cancelled, Total: v.Total})
					}
					return
				}
				if !send(ev) {
					return
				}
				if ev.Type == "complete" {
					return
				}
			case <-heartbeat.C:
				if !send(Event{Campaign: snap.ID, Type: "heartbeat"}) {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Metrics().Snapshot(s.QueueDepth())
		if b := s.Board(); b != nil {
			// Board counters merge under the same flat namespace; the
			// two sets share no keys by construction.
			for k, v := range b.Snapshot() {
				snap[k] = v
			}
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func statusFor(err error) int {
	if errors.Is(err, ErrNotFound) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the caller's problem
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
