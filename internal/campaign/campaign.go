// Package campaign is the serving layer over the parallel runner: a
// queued, resumable, multi-worker campaign scheduler plus its
// HTTP+JSON surface. A campaign is a declarative experiments.Spec
// (the same shape the CLI flags express) expanded into runner jobs,
// scheduled FIFO across a worker pool, executed through the shared
// runner.Executor semantics (cache probe, timeout, panic recovery,
// retry vs quarantine), and journaled to disk so a crashed or drained
// server resumes half-finished campaigns on restart.
//
// The content-addressed result cache is the shared dedup layer: cache
// keys fingerprint config + faults, so a resubmitted or overlapping
// campaign skips every finished cell for free, and a resumed campaign
// recomputes only the cells whose results are not already on disk.
// Simulations themselves stay single-goroutine and bit-deterministic;
// the service only decides when and where they run, so a campaign
// served with N workers — even across a server restart — produces
// byte-identical results to a local serial run.
package campaign

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Submission is the body of POST /campaigns: a declarative spec plus
// service-level options that ride along with every job.
type Submission struct {
	experiments.Spec
	// Faults, when non-nil, injects this deterministic fault script
	// into every job (its fingerprint enters the cache keys).
	Faults *fault.Script `json:"faults,omitempty"`
	// Watchdog overrides the invariant checker's forward-progress
	// window in cycles (0 default, <0 disable).
	Watchdog int64 `json:"watchdog,omitempty"`
}

// Jobs expands the submission into runner jobs in deterministic cell
// order, applying the service-level options. The expansion validates
// everything up front, so an invalid submission is rejected before a
// single simulation runs.
func (s Submission) Jobs() ([]runner.Job, error) {
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: fault script: %w", err)
		}
	}
	jobs, err := runner.FromSpec(s.Spec)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		jobs[i].Faults = s.Faults
		jobs[i].Watchdog = sim.Cycle(s.Watchdog)
	}
	return jobs, nil
}

// Status is a campaign's lifecycle state.
type Status string

const (
	// StatusQueued: submitted, no job has started yet.
	StatusQueued Status = "queued"
	// StatusRunning: at least one job started, not all terminal.
	StatusRunning Status = "running"
	// StatusDone: every job finished ok (fresh or cached).
	StatusDone Status = "done"
	// StatusFailed: every job terminal, at least one failed or was
	// quarantined.
	StatusFailed Status = "failed"
	// StatusCancelled: the campaign was cancelled; queued jobs were
	// dropped and in-flight jobs drained.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether a campaign status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// JobStatus is one job's lifecycle state inside a campaign.
type JobStatus string

const (
	JobQueued      JobStatus = "queued"
	JobRunning     JobStatus = "running"
	JobDone        JobStatus = "done"
	JobCached      JobStatus = "cached"
	JobFailed      JobStatus = "failed"
	JobQuarantined JobStatus = "quarantined"
	JobCancelled   JobStatus = "cancelled"
)

// Terminal reports whether a job status is final.
func (s JobStatus) Terminal() bool {
	switch s {
	case JobDone, JobCached, JobFailed, JobQuarantined, JobCancelled:
		return true
	}
	return false
}

// jobState is the scheduler's per-job record (also the journal's).
type jobState struct {
	Status    JobStatus `json:"status"`
	Key       string    `json:"key,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms,omitempty"`
	Attempts  int       `json:"attempts,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// JobView is the API shape of one job's state.
type JobView struct {
	Index      int       `json:"index"`
	Job        string    `json:"job"`
	Experiment string    `json:"experiment"`
	Scheme     string    `json:"scheme"`
	Seed       int64     `json:"seed"`
	Status     JobStatus `json:"status"`
	Key        string    `json:"key,omitempty"`
	ElapsedMS  float64   `json:"elapsed_ms,omitempty"`
	Attempts   int       `json:"attempts,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// View is the API shape of a campaign: GET /campaigns/{id}.
type View struct {
	ID        string    `json:"id"`
	Label     string    `json:"label,omitempty"`
	Status    Status    `json:"status"`
	Submitted time.Time `json:"submitted"`
	Total     int       `json:"total"`
	Done      int       `json:"done"`
	Cached    int       `json:"cached"`
	Failed    int       `json:"failed"`
	Cancelled int       `json:"cancelled"`
	// Jobs is included in single-campaign views, omitted in listings.
	Jobs []JobView `json:"jobs,omitempty"`
}

// Event is one progress tick streamed by GET /campaigns/{id}/events,
// one JSON object per line. "snapshot" opens every stream with the
// campaign's current counters; "complete" closes it with the final
// status.
type Event struct {
	Campaign  string  `json:"campaign"`
	Type      string  `json:"type"` // snapshot|start|done|cached|failed|retry|cache-corrupt|cancelled|complete|lease|lease-expired|requeued
	Index     int     `json:"index,omitempty"`
	Job       string  `json:"job,omitempty"`
	Status    Status  `json:"status,omitempty"` // snapshot and complete
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
	// Worker names the remote worker in lease-lifecycle events.
	Worker string `json:"worker,omitempty"`
}

// ErrNotFound is returned for unknown campaign ids.
var ErrNotFound = errors.New("campaign: not found")
