package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/runner"
)

// Options configure a Scheduler.
type Options struct {
	// Dir is the journal directory (created if needed). Required.
	Dir string
	// Cache is the shared content-addressed result cache. Required:
	// it is both the dedup layer and the durable result store the
	// journal points into.
	Cache *runner.Cache
	// Workers is the executor pool size; <= 0 means 1.
	Workers int
	// Timeout, Retries, RetryBackoff configure the default local
	// executor (ignored when Executor is set).
	Timeout      time.Duration
	Retries      int
	RetryBackoff time.Duration
	// Executor overrides job execution (tests, remote backends).
	Executor runner.Executor
	// Dispatch, when non-nil, is the remote worker fleet's lease board:
	// jobs are offered to connected ccfit-worker processes and fall
	// back to local execution when none are live. Ignored when Executor
	// is set (an explicit executor owns the whole policy).
	Dispatch *dispatch.Board
	// Metrics receives counters; nil allocates a fresh set.
	Metrics *Metrics
	// Log, when non-nil, receives operational notices (e.g. a
	// submission's sim-workers request being capped against the pool).
	Log func(format string, args ...any)
}

// item is one queued unit: a job index inside a campaign.
type item struct {
	id    string
	index int
}

// campaign is the scheduler's in-memory record of one campaign. The
// identity fields (id, sub, submitted) are immutable after
// construction; every mutable field is guarded by the owning
// scheduler's mutex — the nested-ownership design the guarded-field
// rule's Type.mu annotation form exists for.
type campaign struct {
	id        string
	sub       Submission
	submitted time.Time
	jobs      []runner.Job          // guarded by Scheduler.mu
	status    Status                // guarded by Scheduler.mu
	cancelled bool                  // guarded by Scheduler.mu; cancel requested (status flips when drained)
	states    []jobState            // guarded by Scheduler.mu
	results   []*experiments.Result // guarded by Scheduler.mu; jobs finished in this process
	pending   int                   // guarded by Scheduler.mu; jobs not yet terminal
	ctx       context.Context       // guarded by Scheduler.mu
	cancel    context.CancelFunc    // guarded by Scheduler.mu
	jl        *journal              // guarded by Scheduler.mu
	subs      map[chan Event]struct{} // guarded by Scheduler.mu
}

// Scheduler owns the durable queue: campaigns expand into jobs,
// workers drain the FIFO queue through a runner.Executor, terminal
// transitions are journaled, and subscribers stream progress events.
type Scheduler struct {
	opt     Options
	exec    runner.Executor
	metrics *Metrics

	ctx    context.Context // hard-stop scope for every job
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	campaigns map[string]*campaign // guarded by mu
	order     []string             // guarded by mu
	queue     []item               // guarded by mu
	seq       int                  // guarded by mu
	closed    bool                 // guarded by mu
	wg        sync.WaitGroup
}

// Open starts a scheduler over dir, replaying any journals found
// there: campaigns with unfinished jobs are re-expanded from their
// specs and requeued (finished cells come back from the cache, so a
// resume only recomputes what is actually missing).
func Open(opt Options) (*Scheduler, error) {
	if opt.Dir == "" {
		return nil, errors.New("campaign: Options.Dir is required")
	}
	if opt.Cache == nil {
		return nil, errors.New("campaign: Options.Cache is required (shared dedup layer)")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: journal dir: %w", err)
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	exec := opt.Executor
	if exec == nil {
		local := &runner.LocalExecutor{
			Cache:        opt.Cache,
			Timeout:      opt.Timeout,
			Retries:      opt.Retries,
			RetryBackoff: opt.RetryBackoff,
		}
		if opt.Dispatch != nil {
			exec = &dispatch.RemoteExecutor{Board: opt.Dispatch, Local: local, Log: opt.Log}
		} else {
			exec = local
		}
	}
	m := opt.Metrics
	if m == nil {
		m = NewMetrics(opt.Workers)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opt:       opt,
		exec:      exec,
		metrics:   m,
		ctx:       ctx,
		cancel:    cancel,
		campaigns: map[string]*campaign{},
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.resume(); err != nil {
		cancel()
		return nil, err
	}
	for w := 0; w < opt.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Metrics returns the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Board returns the remote dispatch board, nil when the scheduler runs
// purely locally.
func (s *Scheduler) Board() *dispatch.Board { return s.opt.Dispatch }

// QueueDepth returns the number of queued (not yet running) jobs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Draining reports whether Close has begun: no new campaigns are
// accepted and each worker exits once its in-flight job completes.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// resume replays every journal in the data directory.
//
// It runs from Open before any worker goroutine exists, so it could
// not race today — but it mutates the same queue/campaign state every
// other writer touches under s.mu, and "safe because of who calls me"
// is exactly the invariant a later refactor (background re-scan, hot
// reload) breaks without noticing. Holding the lock costs nothing here
// and lets the guarded-field rule prove the discipline instead of
// trusting the call graph's history.
func (s *Scheduler) resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := listJournals(s.opt.Dir)
	if err != nil {
		return err
	}
	for _, path := range paths {
		rep, err := replayJournal(path)
		if err != nil {
			return fmt.Errorf("campaign: replaying %s: %w", path, err)
		}
		if n, ok := parseID(rep.id); ok && n >= s.seq {
			s.seq = n + 1
		}
		c := &campaign{
			id:        rep.id,
			sub:       rep.sub,
			submitted: rep.submitted,
			cancelled: rep.cancelled,
			subs:      map[chan Event]struct{}{},
		}
		c.ctx, c.cancel = context.WithCancel(s.ctx)
		jobs, jerr := rep.sub.Jobs()
		if jerr != nil {
			// The spec no longer expands (registry drift across
			// versions): surface the campaign as failed rather than
			// wedging the whole service.
			c.status = StatusFailed
			c.states = []jobState{{Status: JobFailed, Error: jerr.Error()}}
			c.jobs = nil
			c.cancel()
			s.campaigns[c.id] = c
			s.order = append(s.order, c.id)
			continue
		}
		c.jobs = s.capSimWorkers(c.id, jobs)
		jobs = c.jobs
		c.states = make([]jobState, len(jobs))
		c.results = make([]*experiments.Result, len(jobs))
		var requeue []int
		for i := range jobs {
			st, ok := rep.states[i]
			switch {
			case ok && (st.Status == JobDone || st.Status == JobCached) && st.Key != "" && !s.opt.Cache.Has(st.Key):
				// Finished once, but the result was evicted since:
				// recompute rather than serve a dangling pointer.
				c.states[i] = jobState{Status: JobQueued}
				requeue = append(requeue, i)
			case ok && st.Status.Terminal():
				c.states[i] = st
			case rep.cancelled:
				c.states[i] = jobState{Status: JobCancelled}
			default:
				// Queued or in-flight at shutdown: run it (again). A
				// cell that actually finished is a free cache hit.
				c.states[i] = jobState{Status: JobQueued}
				requeue = append(requeue, i)
			}
		}
		c.pending = len(requeue)
		if rep.cancelled {
			c.pending = 0
			for _, i := range requeue {
				c.states[i] = jobState{Status: JobCancelled}
			}
			requeue = nil
		}
		if c.pending == 0 {
			c.status = terminalStatus(c)
			c.cancel()
		} else {
			c.status = StatusQueued
			jl, jlerr := openJournal(s.opt.Dir, c.id)
			if jlerr != nil {
				return jlerr
			}
			c.jl = jl
			for _, i := range requeue {
				s.queue = append(s.queue, item{id: c.id, index: i})
			}
			s.metrics.JobsEnqueued.Add(int64(len(requeue)))
			s.metrics.CampaignsResumed.Add(1)
		}
		s.campaigns[c.id] = c
		s.order = append(s.order, c.id)
	}
	return nil
}

// capSimWorkers holds a campaign's per-job partitioned-engine worker
// counts to what the executor pool leaves available (the scheduler
// drains jobs through its own workers, so runner.Run's automatic cap
// never sees them), logging the adjustment. Capping never changes
// results — partitioned runs are byte-identical at any worker count.
func (s *Scheduler) capSimWorkers(id string, jobs []runner.Job) []runner.Job {
	capped := runner.CapSimWorkers(jobs, s.opt.Workers, runtime.GOMAXPROCS(0))
	if capped == nil {
		return jobs
	}
	if s.opt.Log != nil {
		s.opt.Log("campaign %s: capping per-job sim-workers: %d pool workers on GOMAXPROCS=%d",
			id, s.opt.Workers, runtime.GOMAXPROCS(0))
	}
	return capped
}

// parseID extracts the sequence number from a "c%06d" campaign id.
func parseID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "c")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// terminalStatus derives a drained campaign's final status.
func terminalStatus(c *campaign) Status {
	if c.cancelled {
		return StatusCancelled
	}
	for _, st := range c.states {
		switch st.Status {
		case JobFailed, JobQuarantined:
			return StatusFailed
		case JobCancelled:
			return StatusCancelled
		}
	}
	return StatusDone
}

// Submit validates, journals and enqueues a campaign, returning its
// view. The submit record is synced before the call returns: an
// accepted campaign survives an immediate crash.
func (s *Scheduler) Submit(sub Submission) (View, error) {
	jobs, err := sub.Jobs()
	if err != nil {
		return View{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return View{}, errors.New("campaign: scheduler is draining")
	}
	id := fmt.Sprintf("c%06d", s.seq)
	s.seq++
	jobs = s.capSimWorkers(id, jobs)
	now := time.Now()
	jl, err := createJournal(s.opt.Dir, id, sub, now)
	if err != nil {
		return View{}, err
	}
	c := &campaign{
		id:        id,
		sub:       sub,
		submitted: now,
		jobs:      jobs,
		status:    StatusQueued,
		states:    make([]jobState, len(jobs)),
		results:   make([]*experiments.Result, len(jobs)),
		pending:   len(jobs),
		jl:        jl,
		subs:      map[chan Event]struct{}{},
	}
	for i := range c.states {
		c.states[i] = jobState{Status: JobQueued}
	}
	c.ctx, c.cancel = context.WithCancel(s.ctx)
	s.campaigns[id] = c
	s.order = append(s.order, id)
	for i := range jobs {
		s.queue = append(s.queue, item{id: id, index: i})
	}
	s.metrics.CampaignsSubmitted.Add(1)
	s.metrics.JobsEnqueued.Add(int64(len(jobs)))
	s.cond.Broadcast()
	return s.viewLocked(c, true), nil
}

// worker drains the queue until the scheduler closes and the queue is
// empty (graceful drain leaves requeued work for the next process).
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		if s.closed {
			// Draining: leave queued work journal-resumable.
			s.mu.Unlock()
			return
		}
		it := s.queue[0]
		s.queue = s.queue[1:]
		c := s.campaigns[it.id]
		if c == nil || c.states[it.index].Status != JobQueued {
			s.mu.Unlock()
			continue
		}
		c.states[it.index].Status = JobRunning
		if c.status == StatusQueued {
			c.status = StatusRunning
		}
		job := c.jobs[it.index]
		ctx := c.ctx
		s.emitLocked(c, Event{Type: "start", Index: it.index, Job: job.String()})
		s.mu.Unlock()

		var jr runner.JobResult
		if ctx.Err() != nil {
			jr = runner.JobResult{Job: job, Err: ctx.Err()}
		} else {
			stop := s.metrics.jobTimer()
			jr = s.exec.Execute(ctx, job, func(ev runner.Event) {
				s.forward(c, it.index, ev)
			})
			stop()
		}
		s.finish(c, it.index, jr)
	}
}

// forward relays mid-job executor telemetry to subscribers (terminal
// events are emitted by finish, with campaign counters attached).
// Lease-lifecycle events from the remote dispatcher are additionally
// journaled: they are the audit trail that proves a reclaimed job was
// requeued rather than lost, and they survive a service restart.
func (s *Scheduler) forward(c *campaign, index int, ev runner.Event) {
	var typ, leaseState string
	switch ev.Type {
	case runner.JobRetry:
		s.metrics.JobsRetried.Add(1)
		typ = "retry"
	case runner.JobCacheCorrupt:
		typ = "cache-corrupt"
	case runner.JobLeased:
		typ, leaseState = "lease", "granted"
	case runner.JobLeaseExpired:
		typ, leaseState = "lease-expired", "expired"
	case runner.JobReassigned:
		typ, leaseState = "requeued", "reclaimed"
	default:
		return // start is emitted at dispatch, terminal events by finish
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if leaseState != "" && c.jl != nil {
		if err := c.jl.append(record{
			T: "lease", Index: index, W: ev.Worker, LS: leaseState,
		}, false); err != nil {
			s.metrics.JournalErrors.Add(1)
		}
	}
	e := Event{Type: typ, Index: index, Job: c.jobs[index].String(), Worker: ev.Worker}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	s.emitLocked(c, e)
}

// finish records one job's terminal state, journals it, updates
// counters, and completes the campaign when it was the last one.
func (s *Scheduler) finish(c *campaign, index int, jr runner.JobResult) {
	st := jobState{
		Key:       jr.Key,
		ElapsedMS: float64(jr.Elapsed.Milliseconds()),
		Attempts:  jr.Attempts,
	}
	switch {
	case jr.Quarantined:
		st.Status = JobQuarantined
		st.Error = jr.Err.Error()
		s.metrics.JobsQuarantined.Add(1)
	case errors.Is(jr.Err, context.Canceled) || errors.Is(jr.Err, context.DeadlineExceeded):
		st.Status = JobCancelled
		st.Error = jr.Err.Error()
		s.metrics.JobsCancelled.Add(1)
	case jr.Err != nil:
		st.Status = JobFailed
		st.Error = jr.Err.Error()
		s.metrics.JobsFailed.Add(1)
	case jr.Cached:
		st.Status = JobCached
		s.metrics.JobsCached.Add(1)
	default:
		st.Status = JobDone
		s.metrics.JobsDone.Add(1)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	c.states[index] = st
	c.results[index] = jr.Result
	c.pending--
	if c.jl != nil {
		if err := c.jl.append(record{
			T: "job", Index: index, Status: st.Status, Key: st.Key,
			ElapsedMS: st.ElapsedMS, Attempts: st.Attempts, Error: st.Error,
		}, false); err != nil {
			s.metrics.JournalErrors.Add(1)
		}
	}
	ev := Event{Type: string(st.Status), Index: index, Job: jr.Job.String(), ElapsedMS: st.ElapsedMS}
	if st.Error != "" {
		ev.Error = st.Error
	}
	s.emitLocked(c, ev)
	if c.pending == 0 {
		s.completeLocked(c)
	}
}

// completeLocked finalizes a drained campaign. Callers hold s.mu.
func (s *Scheduler) completeLocked(c *campaign) {
	c.status = terminalStatus(c)
	c.cancel() // release the campaign's context resources
	if c.jl != nil {
		// Through the journal's own locked method, not c.jl.f.Sync()
		// directly: reaching around journal.mu to its file handle races
		// any concurrent append's write-then-sync sequence.
		if err := c.jl.sync(); err != nil {
			s.metrics.JournalErrors.Add(1)
		}
	}
	switch c.status {
	case StatusCancelled:
		s.metrics.CampaignsCancelled.Add(1)
	default:
		s.metrics.CampaignsCompleted.Add(1)
	}
	// Persist cache access times at natural quiesce points so a crash
	// costs at most one campaign's worth of LRU accuracy.
	if err := s.opt.Cache.FlushIndex(); err != nil {
		s.metrics.JournalErrors.Add(1)
	}
	s.emitLocked(c, Event{Type: "complete", Status: c.status})
}

// Cancel cancels a campaign: queued jobs are dropped immediately,
// in-flight jobs get their context cancelled and drain. Cancelling a
// terminal campaign is a no-op.
func (s *Scheduler) Cancel(id string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return View{}, ErrNotFound
	}
	if c.status.Terminal() {
		return s.viewLocked(c, true), nil
	}
	c.cancelled = true
	c.cancel()
	if c.jl != nil {
		if err := c.jl.append(record{T: "cancel", At: time.Now()}, true); err != nil {
			s.metrics.JournalErrors.Add(1)
		}
	}
	// Drop queued jobs of this campaign from the FIFO.
	keep := s.queue[:0]
	for _, it := range s.queue {
		if it.id != id {
			keep = append(keep, it)
		}
	}
	s.queue = keep
	for i := range c.states {
		if c.states[i].Status == JobQueued {
			c.states[i] = jobState{Status: JobCancelled}
			c.pending--
			s.metrics.JobsCancelled.Add(1)
			s.emitLocked(c, Event{Type: "cancelled", Index: i, Job: c.jobs[i].String()})
		}
	}
	if c.pending == 0 {
		s.completeLocked(c)
	}
	return s.viewLocked(c, true), nil
}

// View returns one campaign's state (withJobs includes per-job rows).
func (s *Scheduler) View(id string, withJobs bool) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return View{}, ErrNotFound
	}
	return s.viewLocked(c, withJobs), nil
}

// List returns every campaign in submission order, without job rows.
func (s *Scheduler) List() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.viewLocked(s.campaigns[id], false))
	}
	return out
}

func (s *Scheduler) viewLocked(c *campaign, withJobs bool) View {
	v := View{
		ID:        c.id,
		Label:     c.sub.Label,
		Status:    c.status,
		Submitted: c.submitted,
		Total:     len(c.jobs),
	}
	for i, st := range c.states {
		switch st.Status {
		case JobDone:
			v.Done++
		case JobCached:
			v.Cached++
		case JobFailed, JobQuarantined:
			v.Failed++
		case JobCancelled:
			v.Cancelled++
		}
		if withJobs && i < len(c.jobs) {
			j := c.jobs[i]
			expID := j.ExpID
			if expID == "" && j.Exp != nil {
				expID = j.Exp.ID
			}
			v.Jobs = append(v.Jobs, JobView{
				Index: i, Job: j.String(), Experiment: expID, Scheme: j.Scheme,
				Seed: j.Seed, Status: st.Status, Key: st.Key,
				ElapsedMS: st.ElapsedMS, Attempts: st.Attempts, Error: st.Error,
			})
		}
	}
	return v
}

// Results assembles the campaign's job results in cell order. Results
// finished in this process are in memory; results journaled by an
// earlier process are loaded from the shared cache by key. A finished
// job whose cache entry was evicted reports an error for that cell.
func (s *Scheduler) Results(id string) ([]runner.JobResult, error) {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	type cell struct {
		job runner.Job
		st  jobState
		res *experiments.Result
	}
	cells := make([]cell, len(c.jobs))
	for i := range c.jobs {
		cells[i] = cell{job: c.jobs[i], st: c.states[i], res: c.results[i]}
	}
	s.mu.Unlock()

	out := make([]runner.JobResult, len(cells))
	for i, cl := range cells {
		jr := runner.JobResult{
			Job:      cl.job,
			Result:   cl.res,
			Key:      cl.st.Key,
			Cached:   cl.st.Status == JobCached,
			Attempts: cl.st.Attempts,
		}
		switch cl.st.Status {
		case JobDone, JobCached:
			if jr.Result == nil && cl.st.Key != "" {
				res, ok, err := s.opt.Cache.Get(cl.st.Key)
				switch {
				case ok:
					jr.Result = res
				case err != nil:
					jr.Err = err
				default:
					jr.Err = fmt.Errorf("campaign: result for %s evicted from cache; resubmit to recompute", cl.job)
				}
			}
		case JobQuarantined:
			jr.Quarantined = true
			jr.Err = errors.New(cl.st.Error)
		case JobFailed, JobCancelled:
			jr.Err = errors.New(cl.st.Error)
		default:
			jr.Err = fmt.Errorf("campaign: job %s still %s", cl.job, cl.st.Status)
		}
		out[i] = jr
	}
	return out, nil
}

// Subscribe registers a progress listener for a campaign, returning
// the current snapshot, a buffered event channel and a cancel
// function. The snapshot and the channel are registered atomically:
// no event between them is lost. Slow consumers drop events rather
// than stall the scheduler; the terminal "complete" event is always
// the last one delivered (or visible in the snapshot itself).
func (s *Scheduler) Subscribe(id string) (View, <-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return View{}, nil, nil, ErrNotFound
	}
	snap := s.viewLocked(c, false)
	ch := make(chan Event, 1024)
	if !snap.Status.Terminal() {
		c.subs[ch] = struct{}{}
	} else {
		close(ch)
	}
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(c.subs, ch)
	}
	return snap, ch, cancel, nil
}

// emitLocked fans one event to the campaign's subscribers. Callers
// hold s.mu. The terminal complete event closes every subscription.
func (s *Scheduler) emitLocked(c *campaign, ev Event) {
	ev.Campaign = c.id
	ev.Total = len(c.jobs)
	done := 0
	for _, st := range c.states {
		if st.Status.Terminal() {
			done++
		}
	}
	ev.Done = done
	for ch := range c.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop rather than stall the pool
		}
	}
	if ev.Type == "complete" {
		for ch := range c.subs {
			close(ch)
			delete(c.subs, ch)
		}
	}
}

// Close drains the scheduler gracefully: no new campaigns are
// accepted, queued jobs stay journaled for the next process, in-flight
// jobs run to completion and are recorded, journals and the cache
// index are flushed. Safe to call once.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, id := range s.order {
		c := s.campaigns[id]
		if c.jl != nil {
			if err := c.jl.close(); err != nil && firstErr == nil {
				firstErr = err
			}
			c.jl = nil
		}
		// Wake any subscriber still streaming a non-terminal campaign.
		for ch := range c.subs {
			close(ch)
			delete(c.subs, ch)
		}
	}
	if err := s.opt.Cache.FlushIndex(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
