package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// The journal is the scheduler's durable state: one append-only JSON
// Lines file per campaign under the data directory, named <id>.jsonl.
// The first record is the submission itself; after that, one record
// per terminal job transition and one for a cancellation. Nothing
// in-flight is journaled — a job with no terminal record simply runs
// again on restart, and the result cache turns any re-run of an
// already-finished cell into a hit, which is what makes replay cheap
// and byte-identical.
//
// Replay folds records in order, last record per job index wins, so an
// append after a resume (the same index finishing again) supersedes
// the stale state without compaction.

// record is one journal line.
type record struct {
	T string `json:"t"` // "submit" | "job" | "cancel" | "lease"
	// submit fields
	At  time.Time   `json:"at,omitempty"`
	ID  string      `json:"id,omitempty"`
	Sub *Submission `json:"sub,omitempty"`
	// job fields
	Index     int       `json:"i,omitempty"`
	Status    JobStatus `json:"s,omitempty"`
	Key       string    `json:"key,omitempty"`
	ElapsedMS float64   `json:"ms,omitempty"`
	Attempts  int       `json:"n,omitempty"`
	Error     string    `json:"err,omitempty"`
	// lease fields: which remote worker held job Index and what became
	// of the lease ("granted" | "expired" | "reclaimed"). Pure audit
	// trail — replay ignores lease records (the job's terminal state is
	// what matters), but they prove after the fact that a crashed
	// worker's job was reclaimed, not lost.
	W  string `json:"w,omitempty"`
	LS string `json:"ls,omitempty"`
}

// journal is an open per-campaign journal file.
type journal struct {
	mu sync.Mutex
	f  *os.File // guarded by mu
}

func journalPath(dir, id string) string {
	return filepath.Join(dir, id+".jsonl")
}

// createJournal starts a new campaign journal with its submit record,
// synced to disk before the campaign is acknowledged: an accepted
// submission survives an immediate crash.
func createJournal(dir, id string, sub Submission, at time.Time) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir, id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: creating journal: %w", err)
	}
	j := &journal{f: f}
	if err := j.append(record{T: "submit", At: at, ID: id, Sub: &sub}, true); err != nil {
		_ = f.Close()
		_ = os.Remove(journalPath(dir, id))
		return nil, err
	}
	return j, nil
}

// openJournal reopens an existing journal for appending (resume). If
// the file ends in a torn line (crash mid-append), a newline is healed
// in first — otherwise the next record would be concatenated onto the
// garbage and both lines would be lost to replay.
func openJournal(dir, id string) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir, id), os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: reopening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("campaign: reopening journal: %w", err)
	}
	if n := st.Size(); n > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, n-1); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("campaign: reopening journal: %w", err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("campaign: healing torn journal tail: %w", err)
			}
		}
	}
	return &journal{f: f}, nil
}

// append writes one record as a JSON line; sync forces it to disk
// (submit and cancel records — job records are safe to lose, the
// cache re-serves them).
func (j *journal) append(r record, sync bool) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	if sync {
		return j.f.Sync()
	}
	return nil
}

// sync forces buffered journal writes to disk without appending — the
// campaign-completion quiesce point. It exists so callers never touch
// j.f directly: a bare j.f.Sync() from outside would race a concurrent
// append's write-then-sync sequence.
func (j *journal) sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// replayed is one campaign reconstructed from its journal.
type replayed struct {
	id        string
	sub       Submission
	submitted time.Time
	states    map[int]jobState // terminal job records, last wins
	cancelled bool
}

// replayJournal folds one journal file. A truncated trailing line
// (crash mid-append) is tolerated and ignored; a journal without a
// submit record is reported as corrupt.
func replayJournal(path string) (*replayed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := &replayed{states: map[int]jobState{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			continue // torn tail write: ignore, state so far stands
		}
		switch r.T {
		case "submit":
			if r.Sub == nil {
				return nil, fmt.Errorf("campaign: %s: submit record without a spec", path)
			}
			out.id = r.ID
			out.sub = *r.Sub
			out.submitted = r.At
		case "job":
			out.states[r.Index] = jobState{
				Status: r.Status, Key: r.Key, ElapsedMS: r.ElapsedMS,
				Attempts: r.Attempts, Error: r.Error,
			}
		case "cancel":
			out.cancelled = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if out.id == "" {
		return nil, fmt.Errorf("campaign: %s: no submit record", path)
	}
	return out, nil
}

// listJournals returns the journal files under dir in id order.
func listJournals(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}
