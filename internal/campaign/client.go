package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// Client talks to a ccfit-serve instance. The zero HTTP client uses
// http.DefaultClient; Base is the server root, e.g.
// "http://127.0.0.1:8080".
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues one JSON request and decodes the response into out
// (skipped when out is nil). Non-2xx responses decode the server's
// error payload.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if jerr := json.Unmarshal(data, &e); jerr == nil && e.Error != "" {
			return fmt.Errorf("campaign: server %s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return fmt.Errorf("campaign: server %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz checks the server is up.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Submit posts a campaign and returns its initial view.
func (c *Client) Submit(ctx context.Context, sub Submission) (View, error) {
	var v View
	err := c.do(ctx, http.MethodPost, "/campaigns", sub, &v)
	return v, err
}

// Status fetches a campaign's current view (with job rows).
func (c *Client) Status(ctx context.Context, id string) (View, error) {
	var v View
	err := c.do(ctx, http.MethodGet, "/campaigns/"+id, nil, &v)
	return v, err
}

// Cancel requests cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (View, error) {
	var v View
	err := c.do(ctx, http.MethodDelete, "/campaigns/"+id, nil, &v)
	return v, err
}

// Events streams a campaign's progress, invoking fn per event until
// the stream ends (terminal event), fn returns an error, or ctx is
// cancelled. Heartbeats are filtered out.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/campaigns/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("campaign: events stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("campaign: bad event line: %w", err)
		}
		if ev.Type == "heartbeat" {
			continue
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

// waitGrace bounds how long Wait tolerates a completely unreachable
// server (restart window) before giving up: consecutive failed polls
// at waitPoll intervals.
const (
	waitPoll  = 500 * time.Millisecond
	waitGrace = 120 // ~60 s of consecutive unreachability
)

// Wait blocks until the campaign reaches a terminal status, streaming
// events through fn (may be nil) while the stream lasts and falling
// back to polling when it drops. A server restart mid-campaign is
// ridden out: the journal resumes the campaign on the other side, and
// Wait keeps re-subscribing for up to a minute of consecutive
// unreachability before reporting the errors.
func (c *Client) Wait(ctx context.Context, id string, fn func(Event) error) (View, error) {
	failures := 0
	for {
		streamErr := c.Events(ctx, id, func(ev Event) error {
			if fn != nil {
				return fn(ev)
			}
			return nil
		})
		if ctx.Err() != nil {
			return View{}, ctx.Err()
		}
		v, verr := c.Status(ctx, id)
		switch {
		case verr == nil && v.Status.Terminal():
			return v, nil
		case verr == nil:
			failures = 0 // reachable, just not done: keep streaming
		default:
			failures++
			if failures >= waitGrace {
				return View{}, errors.Join(streamErr, verr)
			}
		}
		// Stream dropped mid-campaign (restart, proxy timeout): pause
		// briefly, then re-subscribe.
		select {
		case <-ctx.Done():
			return View{}, ctx.Err()
		case <-time.After(waitPoll):
		}
	}
}

// Results fetches the campaign's per-cell results and reassembles them
// as []runner.JobResult against the locally expanded job list — the
// caller expands the same Submission with the same deterministic
// function, so index i is the same cell on both sides. Cells are
// verified against the local expansion (experiment, scheme, seed) and
// a mismatch is an error: it means client and server disagree about
// the spec.
func (c *Client) Results(ctx context.Context, id string, jobs []runner.Job) ([]runner.JobResult, error) {
	var remote []RemoteResult
	if err := c.do(ctx, http.MethodGet, "/campaigns/"+id+"/results", nil, &remote); err != nil {
		return nil, err
	}
	if len(remote) != len(jobs) {
		return nil, fmt.Errorf("campaign: server returned %d cells, local spec expands to %d — client/server spec mismatch", len(remote), len(jobs))
	}
	out := make([]runner.JobResult, len(jobs))
	for i, rr := range remote {
		job := jobs[i]
		expID := job.ExpID
		if expID == "" && job.Exp != nil {
			expID = job.Exp.ID
		}
		if rr.Experiment != expID || rr.Scheme != job.Scheme || rr.Seed != job.Seed {
			return nil, fmt.Errorf("campaign: cell %d is %s/%s seed=%d on the server but %s locally — client/server spec mismatch",
				i, rr.Experiment, rr.Scheme, rr.Seed, job)
		}
		jr := runner.JobResult{
			Job: job, Cached: rr.Cached, Key: rr.Key,
			Attempts: rr.Attempts, Quarantined: rr.Quarantined,
		}
		if rr.Error != "" {
			jr.Err = errors.New(rr.Error)
		}
		if len(rr.Result) > 0 {
			var res experiments.Result
			if err := json.Unmarshal(rr.Result, &res); err != nil {
				return nil, fmt.Errorf("campaign: decoding result for cell %d: %w", i, err)
			}
			jr.Result = &res
		}
		out[i] = jr
	}
	return out, nil
}

// Run submits a campaign, waits for it to finish (streaming progress
// through fn) and returns the reassembled job results in cell order —
// the remote equivalent of runner.Run over the same spec.
func (c *Client) Run(ctx context.Context, sub Submission, fn func(Event) error) ([]runner.JobResult, error) {
	jobs, err := sub.Jobs()
	if err != nil {
		return nil, err
	}
	v, err := c.Submit(ctx, sub)
	if err != nil {
		return nil, err
	}
	if _, err := c.Wait(ctx, v.ID, fn); err != nil {
		return nil, err
	}
	return c.Results(ctx, v.ID, jobs)
}
