package campaign

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/testutil"
)

// quickSpec is the suite's standard small campaign: fig7a truncated to
// 0.2 simulated milliseconds (the truncation is part of the cache
// fingerprint, so these cells never collide with full runs).
func quickSpec() experiments.Spec {
	return experiments.Spec{Experiments: []string{"fig7a"}, MS: 0.2}
}

func openScheduler(t *testing.T, dir string, opt Options) *Scheduler {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = filepath.Join(dir, "journal")
	}
	if opt.Cache == nil {
		cache, err := runner.OpenCache(filepath.Join(dir, "cache"))
		if err != nil {
			t.Fatal(err)
		}
		opt.Cache = cache
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// waitTerminal subscribes and blocks until the campaign completes,
// returning the events observed (snapshot excluded).
func waitTerminal(t *testing.T, s *Scheduler, id string) []Event {
	t.Helper()
	snap, ch, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatalf("Subscribe(%s): %v", id, err)
	}
	defer cancel()
	if snap.Status.Terminal() {
		return nil
	}
	var events []Event
	deadline := time.After(120 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event stream for %s closed before complete", id)
			}
			events = append(events, ev)
			if ev.Type == "complete" {
				return events
			}
		case <-deadline:
			t.Fatalf("campaign %s did not complete in time", id)
		}
	}
}

// localDigest computes the golden digest of a submission by running it
// in-process through runner.Run with an independent cache — the
// reference every service-side execution must match byte for byte.
func localDigest(t *testing.T, sub Submission) string {
	t.Helper()
	jobs, err := sub.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return resultsDigest(t, results)
}

func resultsDigest(t *testing.T, results []runner.JobResult) string {
	t.Helper()
	var payload []*experiments.Result
	for _, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %s failed: %v", jr.Job, jr.Err)
		}
		payload = append(payload, jr.Result)
	}
	return testutil.MustJSONDigest(t, payload)
}

// TestLifecycle covers submit -> progress events -> complete: counters,
// event shape, results in cell order, and byte-identical output to a
// local serial run of the same spec.
func TestLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := openScheduler(t, dir, Options{Workers: 4})
	defer s.Close()

	sub := Submission{Spec: quickSpec()}
	v, err := s.Submit(sub)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.Total == 0 || v.Status.Terminal() {
		t.Fatalf("fresh campaign view looks terminal: %+v", v)
	}
	events := waitTerminal(t, s, v.ID)

	final, err := s.View(v.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("status = %s, want done", final.Status)
	}
	if final.Done != final.Total || final.Failed != 0 || final.Cancelled != 0 {
		t.Fatalf("counters %+v, want all %d done", final, final.Total)
	}
	starts, terminals := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case "start":
			starts++
		case string(JobDone), string(JobCached):
			terminals++
		}
	}
	if starts != final.Total || terminals != final.Total {
		t.Errorf("saw %d start and %d terminal events for %d jobs", starts, terminals, final.Total)
	}
	last := events[len(events)-1]
	if last.Type != "complete" || last.Status != StatusDone || last.Done != final.Total {
		t.Errorf("final event = %+v, want complete/done/%d", last, final.Total)
	}

	results, err := s.Results(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultsDigest(t, results), localDigest(t, sub); got != want {
		t.Errorf("4-worker service digest %s != local serial digest %s", got, want)
	}
}

// TestDuplicateSubmissionIsAllCacheHits: resubmitting a finished spec
// must touch zero simulations — the shared cache serves every cell.
func TestDuplicateSubmissionIsAllCacheHits(t *testing.T) {
	dir := t.TempDir()
	s := openScheduler(t, dir, Options{Workers: 2})
	defer s.Close()

	sub := Submission{Spec: quickSpec()}
	v1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, v1.ID)

	v2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, v2.ID)
	final, err := s.View(v2.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if final.Cached != final.Total {
		t.Fatalf("duplicate submission: %d/%d cached, want 100%%", final.Cached, final.Total)
	}

	r1, err := s.Results(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Results(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resultsDigest(t, r1) != resultsDigest(t, r2) {
		t.Error("cached resubmission produced different results")
	}
}

// blockingExecutor parks every Execute call until its job's context is
// cancelled — the tool for pinning cancellation semantics.
type blockingExecutor struct {
	started chan string
}

func (e *blockingExecutor) Execute(ctx context.Context, job runner.Job, emit func(runner.Event)) runner.JobResult {
	select {
	case e.started <- job.String():
	default:
	}
	<-ctx.Done()
	return runner.JobResult{Job: job, Err: ctx.Err()}
}

// TestCancelMidRun: cancelling a running campaign drops its queued
// jobs, drains the in-flight one as cancelled, and finalizes the
// campaign as cancelled — all observable through events and the view.
func TestCancelMidRun(t *testing.T) {
	dir := t.TempDir()
	exec := &blockingExecutor{started: make(chan string, 1)}
	s := openScheduler(t, dir, Options{Workers: 1, Executor: exec})
	defer s.Close()

	v, err := s.Submit(Submission{Spec: quickSpec()})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-exec.started:
	case <-time.After(30 * time.Second):
		t.Fatal("no job started")
	}
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitTerminal(t, s, v.ID)
	final, err := s.View(v.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", final.Status)
	}
	if final.Cancelled != final.Total {
		t.Fatalf("%d/%d jobs cancelled, want all", final.Cancelled, final.Total)
	}
	// Cancelling again is a stable no-op.
	again, err := s.Cancel(v.ID)
	if err != nil || again.Status != StatusCancelled {
		t.Fatalf("re-cancel: %+v, %v", again, err)
	}
	// A canceled campaign's journal must not resurrect the jobs.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openScheduler(t, dir, Options{Workers: 1, Executor: exec})
	defer s2.Close()
	resumed, err := s2.View(v.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Status != StatusCancelled || resumed.Cancelled != resumed.Total {
		t.Fatalf("after restart: %+v, want fully cancelled", resumed)
	}
}

// gateExecutor runs the first `after` jobs normally, then parks every
// later Execute at a gate (closing hit on the first arrival) until
// release is closed, so a test can drain the scheduler at a
// deterministic point with work still queued.
type gateExecutor struct {
	inner   runner.Executor
	n       atomic.Int32
	after   int32
	hit     chan struct{}
	release chan struct{}
	once    atomic.Bool
}

func (e *gateExecutor) Execute(ctx context.Context, job runner.Job, emit func(runner.Event)) runner.JobResult {
	if e.n.Add(1) > e.after {
		if e.once.CompareAndSwap(false, true) {
			close(e.hit)
		}
		<-e.release
	}
	return e.inner.Execute(ctx, job, emit)
}

// TestRestartResumesFromJournal is the crash-consistency proof: a
// scheduler drained halfway through a campaign is reopened over the
// same journal and cache, resumes the unfinished jobs, and the final
// results are byte-identical to an uninterrupted local run.
func TestRestartResumesFromJournal(t *testing.T) {
	dir := t.TempDir()
	cache, err := runner.OpenCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	exec := &gateExecutor{
		inner: &runner.LocalExecutor{Cache: cache}, after: 2,
		hit: make(chan struct{}), release: make(chan struct{}),
	}
	s1 := openScheduler(t, dir, Options{Workers: 1, Cache: cache, Executor: exec})

	sub := Submission{Spec: experiments.Spec{Experiments: []string{"fig7a"}, MS: 0.2, Seeds: 2}}
	v, err := s1.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if v.Total < 4 {
		t.Fatalf("want a campaign big enough to halve, got %d jobs", v.Total)
	}
	select {
	case <-exec.hit: // the third job is parked at the gate
	case <-time.After(120 * time.Second):
		t.Fatal("campaign never reached the halfway mark")
	}
	// Graceful drain with the third job in flight: Close flips the
	// scheduler to draining first, then the gate release lets the
	// in-flight job finish and be journaled; everything behind it
	// stays queued on disk.
	closeErr := make(chan error, 1)
	go func() { closeErr <- s1.Close() }()
	for !s1.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(exec.release)
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a torn final write: journal replay must tolerate a
	// partial trailing line.
	jpath := journalPath(filepath.Join(dir, "journal"), v.ID)
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"job","i":9`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openScheduler(t, dir, Options{Workers: 4, Cache: cache})
	defer s2.Close()
	if got := s2.Metrics().CampaignsResumed.Load(); got != 1 {
		t.Errorf("CampaignsResumed = %d, want 1", got)
	}
	waitTerminal(t, s2, v.ID)
	final, err := s2.View(v.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("resumed campaign status = %s, want done", final.Status)
	}
	results, err := s2.Results(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultsDigest(t, results), localDigest(t, sub); got != want {
		t.Errorf("resumed campaign digest %s != uninterrupted local digest %s", got, want)
	}

	// A second restart with nothing pending replays to a terminal
	// campaign without touching the queue.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openScheduler(t, dir, Options{Workers: 1, Cache: cache})
	defer s3.Close()
	v3, err := s3.View(v.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Status.Terminal() {
		t.Errorf("fully-finished campaign resumed as %s", v3.Status)
	}
	r3, err := s3.Results(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultsDigest(t, r3), localDigest(t, sub); got != want {
		t.Errorf("journal-only results digest %s != local digest %s", got, want)
	}
}

// TestSubmitValidation: a bad spec is rejected up front, before any
// job is enqueued or journaled.
func TestSubmitValidation(t *testing.T) {
	dir := t.TempDir()
	s := openScheduler(t, dir, Options{Workers: 1})
	defer s.Close()
	cases := []Submission{
		{Spec: experiments.Spec{Experiments: []string{"no-such-experiment"}}},
		{Spec: experiments.Spec{Experiments: []string{"fig7a"}, Schemes: []string{"bogus"}}},
		{Spec: experiments.Spec{}},
	}
	for _, sub := range cases {
		if _, err := s.Submit(sub); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", sub.Spec)
		}
	}
	if got := len(s.List()); got != 0 {
		t.Fatalf("invalid submissions left %d campaigns behind", got)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("invalid submissions left %d journal files behind", len(entries))
	}
}

// TestUnknownCampaign: every accessor agrees on ErrNotFound.
func TestUnknownCampaign(t *testing.T) {
	dir := t.TempDir()
	s := openScheduler(t, dir, Options{Workers: 1})
	defer s.Close()
	if _, err := s.View("c999999", true); err != ErrNotFound {
		t.Errorf("View: %v, want ErrNotFound", err)
	}
	if _, err := s.Results("c999999"); err != ErrNotFound {
		t.Errorf("Results: %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("c999999"); err != ErrNotFound {
		t.Errorf("Cancel: %v, want ErrNotFound", err)
	}
	if _, _, _, err := s.Subscribe("c999999"); err != ErrNotFound {
		t.Errorf("Subscribe: %v, want ErrNotFound", err)
	}
}
