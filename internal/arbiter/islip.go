// Package arbiter implements the iSLIP crossbar scheduling algorithm
// (McKeown, ToN 1999) used by every switch in the paper's evaluation
// (Table I: "Scheduling: iSlip algorithm"). iSLIP computes a maximal
// matching between input and output ports with rotating round-robin
// grant/accept pointers, which is what gives the fair per-input-port
// arbitration the CCFIT fairness analysis relies on.
package arbiter

// ISlip is an iSLIP scheduler instance for one switch. It keeps the
// per-output grant pointers and per-input accept pointers across
// cycles, as the algorithm requires ("desynchronisation" of pointers is
// what makes iSLIP achieve 100% throughput on uniform traffic).
type ISlip struct {
	in, out, iters int
	grant          []int // per output: next input to favour
	accept         []int // per input: next output to favour
	// scratch, reused across Match calls to stay allocation-free
	matchIn  []int // per input: matched output or -1
	matchOut []int // per output: matched input or -1
	granted  []int // per input: output that granted this iteration (-1)
}

// NewISlip returns a scheduler for in input ports and out output ports
// running the given number of request/grant/accept iterations per cycle
// (the paper does not state the count; 2 is a common hardware choice
// and the results are insensitive to it — see BenchmarkAblationISlip).
func NewISlip(in, out, iters int) *ISlip {
	if in <= 0 || out <= 0 || iters <= 0 {
		panic("arbiter: NewISlip needs positive dimensions and iterations")
	}
	return &ISlip{
		in: in, out: out, iters: iters,
		grant:    make([]int, out),
		accept:   make([]int, in),
		matchIn:  make([]int, in),
		matchOut: make([]int, out),
		granted:  make([]int, in),
	}
}

// Match computes a matching. req(i,o) reports whether input i requests
// output o this cycle. prio(i,o) optionally marks a request as high
// priority (the paper gives BECN packets transmission priority): a
// requesting input with priority wins the grant round over
// non-priority inputs at the same output. prio may be nil.
//
// The returned slice maps each input port to its matched output port,
// or -1; it is valid until the next Match call.
func (s *ISlip) Match(req func(in, out int) bool, prio func(in, out int) bool) []int {
	for i := range s.matchIn {
		s.matchIn[i] = -1
	}
	for o := range s.matchOut {
		s.matchOut[o] = -1
	}

	for it := 0; it < s.iters; it++ {
		// Grant phase: each unmatched output picks among requesting
		// unmatched inputs, preferring priority requests, then the
		// round-robin pointer order.
		for i := range s.granted {
			s.granted[i] = -1
		}
		progress := false
		for o := 0; o < s.out; o++ {
			if s.matchOut[o] != -1 {
				continue
			}
			pick := s.pickInput(o, req, prio)
			if pick >= 0 {
				// Tentative grant; an input may collect several.
				// Record the best grant per input in accept order later;
				// here we just mark that o granted pick by storing in a
				// per-output fashion: inputs resolve in the accept phase.
				// We need all grants per input; store via granted list:
				// if the input already holds a grant, keep both by
				// resolving immediately in accept-pointer order.
				if cur := s.granted[pick]; cur == -1 || s.closerOutput(pick, o, cur) {
					s.granted[pick] = o
				}
			}
		}
		// Accept phase: each input with a grant accepts it.
		for i := 0; i < s.in; i++ {
			o := s.granted[i]
			if o == -1 || s.matchIn[i] != -1 {
				continue
			}
			s.matchIn[i] = o
			s.matchOut[o] = i
			progress = true
			if it == 0 {
				// Pointers advance only for first-iteration matches
				// (the iSLIP rule that prevents starvation).
				s.grant[o] = (i + 1) % s.in
				s.accept[i] = (o + 1) % s.out
			}
		}
		if !progress {
			break
		}
	}
	return s.matchIn
}

// pickInput selects which unmatched input output o grants to.
func (s *ISlip) pickInput(o int, req, prio func(in, out int) bool) int {
	pick, pickPrio := -1, false
	for k := 0; k < s.in; k++ {
		i := (s.grant[o] + k) % s.in
		if s.matchIn[i] != -1 || !req(i, o) {
			continue
		}
		p := prio != nil && prio(i, o)
		if pick == -1 || (p && !pickPrio) {
			pick, pickPrio = i, p
			if pickPrio {
				break // first priority input in pointer order wins
			}
		}
	}
	return pick
}

// closerOutput reports whether output a precedes output b in input i's
// accept-pointer round-robin order.
func (s *ISlip) closerOutput(i, a, b int) bool {
	da := (a - s.accept[i] + s.out) % s.out
	db := (b - s.accept[i] + s.out) % s.out
	return da < db
}

// RoundRobin is a simple rotating picker used for per-port queue
// selection (e.g. an input adapter choosing among its AdVOQs, or an
// input port choosing among NFQ/CFQs granted the same output).
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a picker over n slots.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("arbiter: NewRoundRobin needs n > 0")
	}
	return &RoundRobin{n: n}
}

// Pick returns the first eligible slot starting from the pointer, and
// advances the pointer past it; -1 if none is eligible.
func (r *RoundRobin) Pick(eligible func(i int) bool) int {
	for k := 0; k < r.n; k++ {
		i := (r.next + k) % r.n
		if eligible(i) {
			r.next = (i + 1) % r.n
			return i
		}
	}
	return -1
}

// Pointer returns the current round-robin position without advancing.
func (r *RoundRobin) Pointer() int { return r.next }

// Closer reports whether slot a precedes slot b in the current
// round-robin order (used to compare candidates without advancing).
func (r *RoundRobin) Closer(a, b int) bool {
	return (a-r.next+r.n)%r.n < (b-r.next+r.n)%r.n
}

// Served advances the pointer past slot i after it was chosen
// externally (e.g. by a crossbar grant rather than Pick).
func (r *RoundRobin) Served(i int) { r.next = (i + 1) % r.n }
