package arbiter

import (
	"testing"
	"testing/quick"
)

// reqMatrix adapts a [][]bool to the request callback.
func reqMatrix(m [][]bool) func(i, o int) bool {
	return func(i, o int) bool { return m[i][o] }
}

func TestMatchIsAMatching(t *testing.T) {
	s := NewISlip(4, 4, 2)
	req := [][]bool{
		{true, true, false, false},
		{true, false, false, false},
		{false, false, true, true},
		{false, false, false, true},
	}
	m := s.Match(reqMatrix(req), nil)
	seenOut := map[int]bool{}
	for i, o := range m {
		if o == -1 {
			continue
		}
		if !req[i][o] {
			t.Fatalf("input %d matched unrequested output %d", i, o)
		}
		if seenOut[o] {
			t.Fatalf("output %d matched twice", o)
		}
		seenOut[o] = true
	}
	// iSLIP yields a *maximal* matching: no request can be added
	// between an unmatched input and an unmatched output.
	for i, o := range m {
		if o != -1 {
			continue
		}
		for cand := 0; cand < 4; cand++ {
			if req[i][cand] && !seenOut[cand] {
				t.Fatalf("matching %v not maximal: input %d / output %d both free", m, i, cand)
			}
		}
	}
}

func TestSingleContendedOutputRotates(t *testing.T) {
	// 3 inputs all wanting output 0: over 3 cycles each must win once
	// (round-robin fairness, the property the fairness study uses).
	s := NewISlip(3, 1, 1)
	wins := make([]int, 3)
	for c := 0; c < 30; c++ {
		m := s.Match(func(i, o int) bool { return true }, nil)
		won := -1
		for i, o := range m {
			if o == 0 {
				if won != -1 {
					t.Fatal("two inputs matched one output")
				}
				won = i
			}
		}
		if won == -1 {
			t.Fatal("nobody matched a fully requested output")
		}
		wins[won]++
	}
	for i, w := range wins {
		if w != 10 {
			t.Fatalf("input %d won %d/30, want 10 (wins=%v)", i, w, wins)
		}
	}
}

func TestNoRequestsNoMatch(t *testing.T) {
	s := NewISlip(2, 2, 2)
	m := s.Match(func(i, o int) bool { return false }, nil)
	for i, o := range m {
		if o != -1 {
			t.Fatalf("input %d matched %d with no requests", i, o)
		}
	}
}

func TestPriorityWinsGrant(t *testing.T) {
	s := NewISlip(4, 1, 1)
	// All inputs request output 0; input 2 has priority (a BECN at its
	// head). It must win regardless of pointer position.
	for c := 0; c < 8; c++ {
		m := s.Match(
			func(i, o int) bool { return true },
			func(i, o int) bool { return i == 2 },
		)
		for i, o := range m {
			if o == 0 && i != 2 {
				t.Fatalf("cycle %d: input %d beat the priority input", c, i)
			}
		}
		if m[2] != 0 {
			t.Fatalf("cycle %d: priority input unmatched", c)
		}
	}
}

func TestMultipleIterationsImprove(t *testing.T) {
	// Pattern where 1 iteration can leave an input unmatched: inputs 0
	// and 1 both want outputs 0 and 1. With pointers aligned, both
	// outputs grant input 0 in iteration 1, input 1 only matches in
	// iteration 2.
	s1 := NewISlip(2, 2, 1)
	m1 := s1.Match(func(i, o int) bool { return true }, nil)
	matched1 := 0
	for _, o := range m1 {
		if o != -1 {
			matched1++
		}
	}
	s2 := NewISlip(2, 2, 2)
	m2 := s2.Match(func(i, o int) bool { return true }, nil)
	matched2 := 0
	for _, o := range m2 {
		if o != -1 {
			matched2++
		}
	}
	if matched2 != 2 {
		t.Fatalf("2-iteration iSLIP matched %d/2", matched2)
	}
	if matched1 > matched2 {
		t.Fatalf("more iterations matched fewer ports (%d vs %d)", matched1, matched2)
	}
}

func TestDesynchronisationFullLoad(t *testing.T) {
	// Under full uniform request load, after a warm-up the pointers
	// desynchronise and every cycle yields a perfect matching — the
	// hallmark iSLIP behaviour.
	s := NewISlip(4, 4, 1)
	req := func(i, o int) bool { return true }
	perfect := 0
	for c := 0; c < 100; c++ {
		m := s.Match(req, nil)
		n := 0
		for _, o := range m {
			if o != -1 {
				n++
			}
		}
		if c >= 10 && n == 4 {
			perfect++
		}
	}
	if perfect != 90 {
		t.Fatalf("perfect matchings after warm-up: %d/90", perfect)
	}
}

// Property: for arbitrary request matrices the result is always a valid
// matching and respects requests.
func TestMatchValidityProperty(t *testing.T) {
	f := func(bits []bool, in8, out8 uint8) bool {
		in := int(in8%6) + 1
		out := int(out8%6) + 1
		s := NewISlip(in, out, 2)
		req := func(i, o int) bool {
			idx := i*out + o
			return idx < len(bits) && bits[idx]
		}
		for round := 0; round < 4; round++ {
			m := s.Match(req, nil)
			used := map[int]bool{}
			for i, o := range m {
				if o == -1 {
					continue
				}
				if o < 0 || o >= out || !req(i, o) || used[o] {
					return false
				}
				used[o] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinPicker(t *testing.T) {
	r := NewRoundRobin(3)
	all := func(int) bool { return true }
	got := []int{r.Pick(all), r.Pick(all), r.Pick(all), r.Pick(all)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v, want %v", got, want)
		}
	}
	if r.Pick(func(int) bool { return false }) != -1 {
		t.Fatal("pick with nothing eligible")
	}
	// Skips ineligible slots but still rotates.
	only2 := func(i int) bool { return i == 2 }
	if r.Pick(only2) != 2 || r.Pick(only2) != 2 {
		t.Fatal("picker does not find the only eligible slot")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewISlip(0, 1, 1) },
		func() { NewISlip(1, 0, 1) },
		func() { NewISlip(1, 1, 0) },
		func() { NewRoundRobin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor args did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkISlip8x8Full(b *testing.B) {
	s := NewISlip(8, 8, 2)
	req := func(i, o int) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Match(req, nil)
	}
}
