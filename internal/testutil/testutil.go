// Package testutil holds the golden-digest helpers shared by test
// suites across the repo: building and hashing state descriptions,
// canonical JSON digests, and golden-file load/compare/update plumbing
// with the conventional -update flag workflow. Extracting them here
// keeps the digest format identical everywhere, so "what exactly is
// pinned" has one answer (and one place to change it).
//
// The package deliberately depends on nothing but the standard library:
// in-package test files (package foo, not foo_test) may import it
// without creating an import cycle through the package under test.
package testutil

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Digest accumulates a textual state description and hashes it. Use it
// to pin "everything a replay must reproduce": append every counter and
// statistic that matters with Addf, then compare Sum (or the full text,
// when a mismatch should print the first diverging line).
type Digest struct {
	b strings.Builder
}

// Addf appends one formatted line to the digest text.
func (d *Digest) Addf(format string, args ...any) {
	fmt.Fprintf(&d.b, format+"\n", args...)
}

// String returns the accumulated text (useful in failure messages).
func (d *Digest) String() string { return d.b.String() }

// Sum returns the SHA-256 hex of the accumulated text.
func (d *Digest) Sum() string {
	sum := sha256.Sum256([]byte(d.b.String()))
	return hex.EncodeToString(sum[:])
}

// JSONDigest returns the SHA-256 hex of v's JSON encoding — the digest
// of record for pinned simulation results (encoding/json is stable for
// a fixed struct definition, so the digest only moves when the data or
// the schema does).
func JSONDigest(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MustJSONDigest is JSONDigest failing the test on a marshal error.
func MustJSONDigest(t testing.TB, v any) string {
	t.Helper()
	d, err := JSONDigest(v)
	if err != nil {
		t.Fatalf("testutil: digest: %v", err)
	}
	return d
}

// FirstDiff returns the first line where two digest texts diverge, for
// failure messages that point at the offending counter instead of two
// opaque hashes. It returns "" when the texts are identical.
func FirstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		av, bv := "", ""
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if av != bv {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, av, bv)
		}
	}
	return ""
}

// CompareGoldenMap compares got against the JSON string map stored at
// path. With update=true it rewrites the file (keys sorted) and
// returns; otherwise a missing file is fatal with regeneration advice,
// and every mismatched, missing or unexpected key is reported.
func CompareGoldenMap(t testing.TB, path string, got map[string]string, update bool) {
	t.Helper()
	if update {
		WriteGoldenJSON(t, path, sortedMap(got))
		t.Logf("wrote %d entries to %s", len(got), path)
		return
	}
	var want map[string]string
	ReadGoldenJSON(t, path, &want)
	if len(want) != len(got) {
		t.Errorf("golden file %s has %d entries, run produced %d", path, len(want), len(got))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: no value produced", k)
		} else if g != w {
			t.Errorf("%s: got %s, want %s (pinned behaviour changed)", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: produced but not in golden file (regenerate with the update flag)", k)
		}
	}
}

// sortedMap re-inserts keys in sorted order so MarshalIndent output is
// deterministic (encoding/json sorts map keys anyway; this documents
// the intent and keeps parity with the historical format).
func sortedMap(m map[string]string) map[string]string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(map[string]string, len(m))
	for _, k := range keys {
		out[k] = m[k]
	}
	return out
}

// WriteGoldenJSON writes v as indented JSON at path, creating parent
// directories — the update side of every golden-file workflow.
func WriteGoldenJSON(t testing.TB, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ReadGoldenJSON loads the golden file at path into v; a missing or
// corrupt file is fatal with advice to regenerate.
func ReadGoldenJSON(t testing.TB, path string, v any) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with the package's update flag): %v", err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
}
