package testutil

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDigest(t *testing.T) {
	var a, b Digest
	a.Addf("x=%d", 1)
	a.Addf("y=%d", 2)
	b.Addf("x=%d", 1)
	b.Addf("y=%d", 2)
	if a.Sum() != b.Sum() {
		t.Fatal("identical texts hash differently")
	}
	if a.String() != "x=1\ny=2\n" {
		t.Fatalf("text %q", a.String())
	}
	var c Digest
	c.Addf("x=%d", 1)
	c.Addf("y=%d", 3)
	if a.Sum() == c.Sum() {
		t.Fatal("different texts collide")
	}
}

func TestFirstDiff(t *testing.T) {
	if d := FirstDiff("a\nb\n", "a\nb\n"); d != "" {
		t.Fatalf("identical texts differ: %q", d)
	}
	d := FirstDiff("a\nb\nc\n", "a\nX\nc\n")
	if !strings.Contains(d, "line 2") || !strings.Contains(d, "X") {
		t.Fatalf("diff %q misses the diverging line", d)
	}
	// Unequal lengths: the missing tail is the difference.
	if d := FirstDiff("a\n", "a\nb\n"); !strings.Contains(d, "b") {
		t.Fatalf("tail diff %q", d)
	}
}

func TestJSONDigest(t *testing.T) {
	type v struct{ A, B int }
	d1, err := JSONDigest(v{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d2 := MustJSONDigest(t, v{1, 2})
	if d1 != d2 {
		t.Fatal("digest not stable")
	}
	if d3 := MustJSONDigest(t, v{1, 3}); d3 == d1 {
		t.Fatal("different values collide")
	}
	if _, err := JSONDigest(func() {}); err == nil {
		t.Fatal("unmarshalable value accepted")
	}
}

// TestGoldenRoundTrip drives the full golden-map workflow against a
// temp dir: update writes, compare passes, a mutation is detected via
// a fresh testing.T so this test can observe the failure.
func TestGoldenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "golden.json")
	got := map[string]string{"k1": "v1", "k2": "v2"}
	CompareGoldenMap(t, path, got, true)  // update
	CompareGoldenMap(t, path, got, false) // clean compare on this T

	// Mismatch, missing and extra keys must all fail — run them on a
	// scratch T and inspect it.
	for name, bad := range map[string]map[string]string{
		"changed": {"k1": "CHANGED", "k2": "v2"},
		"missing": {"k1": "v1"},
		"extra":   {"k1": "v1", "k2": "v2", "k3": "v3"},
	} {
		scratch := &testing.T{}
		CompareGoldenMap(scratch, path, bad, false)
		if !scratch.Failed() {
			t.Errorf("%s golden map accepted", name)
		}
	}
}

func TestReadGoldenJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	WriteGoldenJSON(t, path, map[string]int{"n": 7})
	var back map[string]int
	ReadGoldenJSON(t, path, &back)
	if back["n"] != 7 {
		t.Fatalf("round trip lost data: %v", back)
	}
}
