// Package ccfit is a cycle-level reproduction of "Combining
// Congested-Flow Isolation and Injection Throttling in HPC
// Interconnection Networks" (Escudero-Sahuquillo et al., ICPP 2011).
//
// It provides, as a library:
//
//   - a deterministic cycle-level simulator of lossless, credit-based
//     input-queued interconnection networks (virtual cut-through
//     switching, iSLIP crossbar scheduling, table-based deterministic
//     routing, k-ary n-tree and ad-hoc topologies);
//   - the paper's congestion-management schemes as presets: 1Q, FBICM
//     (congested-flow isolation), ITh (InfiniBand-style injection
//     throttling over VOQsw), CCFIT (the paper's contribution:
//     isolation + throttling), VOQnet (the near-ideal reference), and
//     DBBM as an extra baseline;
//   - the paper's complete evaluation as a registry of runnable
//     experiments (Table I, Figs. 7-10), with text and CSV renderers.
//
// # Quick start
//
//	p := ccfit.CCFIT()
//	net, err := ccfit.Build(ccfit.Config1(), p, ccfit.Options{Seed: 1})
//	if err != nil { ... }
//	err = net.AddFlows([]ccfit.Flow{
//		{ID: 0, Src: 0, Dst: 3, Start: 0, End: ccfit.MS(10), Rate: 1.0},
//	})
//	net.RunMS(10)
//	fmt.Println(net.Collector.TotalSeries(0))
//
// Or reproduce a figure directly:
//
//	exp, _ := ccfit.ExperimentByID("fig8b")
//	results, _ := ccfit.RunAll(exp, 1)
//	ccfit.RenderThroughput(os.Stdout, exp, results)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package ccfit

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Core simulation types, re-exported for library users.
type (
	// Params bundles every congestion-management tunable; start from a
	// scheme preset and override fields as needed.
	Params = core.Params
	// Network is a fully wired, runnable simulation instance.
	Network = network.Network
	// Options configure a Build (seed, metrics bin, routing tie-break).
	Options = network.Options
	// Flow describes one traffic source (fixed or uniform destination).
	Flow = traffic.Flow
	// Topology describes endpoints, switches and links.
	Topology = topo.Topology
	// FatTree is a k-ary n-tree with DET-routing metadata.
	FatTree = topo.FatTree
	// LeafSpine is a two-level Clos fabric with DET-routing metadata.
	LeafSpine = topo.LeafSpine
	// CDF is an empirical flow-size distribution for open-loop traffic.
	CDF = traffic.CDF
	// OpenLoop is a CDF-driven Poisson open-loop workload spec.
	OpenLoop = traffic.OpenLoop
	// FCTStats summarizes flow completion times by size bucket.
	FCTStats = metrics.FCTStats
	// Builder constructs ad-hoc topologies.
	Builder = topo.Builder
	// Cycle is simulated time (25.6 ns per cycle).
	Cycle = sim.Cycle
	// TieBreak selects among equal-cost routes.
	TieBreak = route.TieBreak
	// Experiment is one entry of the paper's evaluation registry.
	Experiment = experiments.Experiment
	// Result is one (experiment, scheme) run outcome.
	Result = experiments.Result
	// FaultScript is a deterministic, replayable fault scenario
	// (scripted link flaps, degrades, control-channel tampering,
	// switch stalls, node pauses); inject with Network.InjectFaults.
	FaultScript = fault.Script
	// FaultEvent is one scripted fault.
	FaultEvent = fault.Event
	// InvariantViolation is a failed runtime invariant (conservation,
	// credit bounds, CAM leak, watchdog) with its diagnostic snapshot.
	InvariantViolation = invariant.Violation
)

// UniformDst marks a Flow that draws a fresh random destination for
// every packet.
const UniformDst = traffic.UniformDst

// MTU is the packet maximum transfer unit (2048 bytes, Table I).
const MTU = 2048

// Build wires a network for a topology and scheme parameters.
func Build(t *Topology, p Params, opt Options) (*Network, error) {
	return network.Build(t, p, opt)
}

// BuildFatTree wires a fat-tree network with DET routing installed.
func BuildFatTree(f *FatTree, p Params, opt Options) (*Network, error) {
	opt.TieBreak = f.DETTieBreak
	return network.Build(f.Topology, p, opt)
}

// NewTopology returns a builder for ad-hoc topologies.
func NewTopology(name string) *Builder { return topo.NewBuilder(name) }

// KaryNTree builds a k-ary n-tree with uniform links of
// bytesPerCycle bandwidth (64 = 2.5 GB/s) and the given delay.
func KaryNTree(k, n, bytesPerCycle int, delay Cycle) (*FatTree, error) {
	return topo.KaryNTree(k, n, bytesPerCycle, delay)
}

// NewLeafSpine builds a two-level Clos fabric: `leaves` leaf switches
// with `down` endpoints each, meshed to `spines` spine switches by
// `trunk` parallel links per pair (oversubscription ratio
// down : spines*trunk).
func NewLeafSpine(leaves, down, spines, trunk, bytesPerCycle int, delay Cycle) (*LeafSpine, error) {
	return topo.NewLeafSpine(leaves, down, spines, trunk, bytesPerCycle, delay)
}

// BuildLeafSpine wires a leaf-spine network with DET routing installed.
func BuildLeafSpine(ls *LeafSpine, p Params, opt Options) (*Network, error) {
	opt.TieBreak = ls.DETTieBreak
	return network.Build(ls.Topology, p, opt)
}

// Config1 returns the paper's Configuration #1 (7 nodes, 2 switches).
func Config1() *Topology { return topo.Config1() }

// Config2 returns Configuration #2 (2-ary 3-tree).
func Config2() *FatTree { return topo.Config2() }

// Config3 returns Configuration #3 (4-ary 3-tree, 64 nodes).
func Config3() *FatTree { return topo.Config3() }

// MS converts milliseconds of simulated time to cycles.
func MS(ms float64) Cycle { return sim.CyclesFromMS(ms) }

// NS converts nanoseconds of simulated time to cycles.
func NS(ns float64) Cycle { return sim.CyclesFromNS(ns) }

// JainIndex computes Jain's fairness index over per-flow bandwidths:
// 1.0 is perfectly fair, 1/n is maximally unfair.
func JainIndex(xs []float64) float64 { return metrics.JainIndex(xs) }

// LoadFaultScript reads and validates a JSON fault script (see
// scripts/faults/ for examples and DESIGN.md for the event grammar).
func LoadFaultScript(path string) (*FaultScript, error) { return fault.Load(path) }

// IsInvariantViolation reports whether err is (or wraps) a runtime
// invariant violation — deterministic failures the runner quarantines
// instead of retrying.
func IsInvariantViolation(err error) bool { return invariant.IsViolation(err) }
