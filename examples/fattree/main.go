// Fattree: build a custom k-ary n-tree (not one of the paper's three
// configurations), drive it with uniform background traffic plus a
// sudden multi-tree hot-spot burst, and watch the network throughput
// dip and recover under FBICM versus CCFIT — the paper's scalability
// argument (Fig. 8) on a user-defined network.
//
//	go run ./examples/fattree
package main

import (
	"fmt"
	"log"

	ccfit "repro"
)

const (
	k = 2 // switch arity
	n = 4 // tree levels -> k^n = 16 endpoints, 32 switches
)

func main() {
	fmt.Printf("%d-ary %d-tree: %d endpoints; uniform load + 3-tree burst in [0.5,1.0] ms\n\n", k, n, 1<<n)

	for _, name := range []string{"FBICM", "CCFIT"} {
		params, err := ccfit.Scheme(name)
		if err != nil {
			log.Fatal(err)
		}
		tree, err := ccfit.KaryNTree(k, n, 64, 4)
		if err != nil {
			log.Fatal(err)
		}
		net, err := ccfit.BuildFatTree(tree, params, ccfit.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}

		end := ccfit.MS(2)
		var flows []ccfit.Flow
		numEP := tree.NumEndpoints()
		// Three of every four nodes send uniform traffic all along.
		for s := 0; s < numEP; s++ {
			if s%4 != 3 {
				flows = append(flows, ccfit.Flow{
					ID: s, Src: s, Dst: ccfit.UniformDst, Start: 0, End: end, Rate: 1.0,
				})
			}
		}
		// The rest blast three hot destinations during [0.5, 1.0] ms.
		hotDests := []int{1, 5, 9}
		hot := 0
		for s := 0; s < numEP; s++ {
			if s%4 == 3 {
				flows = append(flows, ccfit.Flow{
					ID: s, Src: s, Dst: hotDests[hot%len(hotDests)],
					Start: ccfit.MS(0.5), End: ccfit.MS(1.0), Rate: 1.0,
				})
				hot++
			}
		}
		if err := net.AddFlows(flows); err != nil {
			log.Fatal(err)
		}
		net.RunMS(2)

		fmt.Printf("-- %s --\n", name)
		series := net.Collector.NormalizedSeries(int(end / net.Collector.BinCycles()))
		for i, v := range series {
			marker := " "
			t := float64(i) * net.Collector.BinMS()
			if t >= 0.5 && t < 1.0 {
				marker = "*" // burst window
			}
			fmt.Printf("  t=%4.2f ms %s %5.3f %s\n", t, marker, v, gauge(v))
		}
		ds := net.DiscStatsSum()
		fmt.Printf("  CFQ detections=%d lazy allocs=%d exhaustions=%d deallocs=%d\n\n",
			ds.Detections, ds.LazyAllocs, ds.CAMExhausted, ds.Deallocs)
	}
	fmt.Println("* = hot-spot burst active. CCFIT's throttling keeps more CFQs free")
	fmt.Println("(fewer exhaustions) and recovers faster after the burst.")
}

func gauge(v float64) string {
	bars := int(v * 50)
	out := make([]byte, bars)
	for i := range out {
		out[i] = '='
	}
	return string(out)
}
