// Hotspot: anatomy of a congestion tree. Runs the same hot-spot
// scenario on Configuration #1 under every scheme and prints what the
// congestion-management machinery did: detections, CFQ allocations and
// releases, Stop/Go flow-control events, FECN marks and BECNs — next
// to the victim's achieved bandwidth, so the mechanism-to-effect chain
// of the paper is visible in one table.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	ccfit "repro"
)

func main() {
	fmt.Println("congestion-tree anatomy: victim 0->3 vs contributors (1,2,5,6)->4 on Config #1")
	fmt.Printf("%-8s %9s %9s %8s %8s %8s %8s %8s %8s\n",
		"scheme", "victim", "hotlink", "detect", "dealloc", "stops", "marked", "becns", "exhaust")

	var ccfitTrace *ccfit.TraceRing
	for _, name := range []string{"1Q", "DBBM", "ITh", "FBICM", "CCFIT", "VOQnet"} {
		params, err := ccfit.Scheme(name)
		if err != nil {
			log.Fatal(err)
		}
		if name == "CCFIT" {
			// Capture the protocol milestones of the CCFIT run for the
			// excerpt printed below.
			ccfitTrace = ccfit.NewTraceRing(1 << 16)
			params.Tracer = ccfit.TraceOnly(ccfitTrace,
				ccfit.EvDetect, ccfit.EvPropagate, ccfit.EvStop, ccfit.EvGo,
				ccfit.EvCongestionOn, ccfit.EvDealloc)
		}
		net, err := ccfit.Build(ccfit.Config1(), params, ccfit.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		end := ccfit.MS(5)
		err = net.AddFlows([]ccfit.Flow{
			{ID: 0, Src: 0, Dst: 3, Start: 0, End: end, Rate: 1.0},
			{ID: 1, Src: 1, Dst: 4, Start: 0, End: end, Rate: 1.0},
			{ID: 2, Src: 2, Dst: 4, Start: 0, End: end, Rate: 1.0},
			{ID: 5, Src: 5, Dst: 4, Start: 0, End: end, Rate: 1.0},
			{ID: 6, Src: 6, Dst: 4, Start: 0, End: end, Rate: 1.0},
		})
		if err != nil {
			log.Fatal(err)
		}
		net.RunMS(5)

		bins := len(net.Collector.TotalSeries(0))
		victim := net.Collector.MeanFlowBandwidth(0, bins/2, bins)
		hot := 0.0
		for _, f := range []int{1, 2, 5, 6} {
			hot += net.Collector.MeanFlowBandwidth(f, bins/2, bins)
		}
		ds := net.DiscStatsSum()
		marked, becns := 0, 0
		for _, sw := range net.Switches {
			marked += sw.Stats().Marked
		}
		for _, nd := range net.Nodes {
			becns += nd.Stats().BECNsReceived
		}
		fmt.Printf("%-8s %8.2fG %8.2fG %8d %8d %8d %8d %8d %8d\n",
			name, victim, hot, ds.Detections, ds.Deallocs, ds.StopsSent, marked, becns, ds.CAMExhausted)
	}

	fmt.Println()
	fmt.Println("first protocol events of the CCFIT run:")
	for i, ev := range ccfitTrace.Events() {
		if i >= 10 {
			break
		}
		fmt.Println(" ", ccfit.FormatTraceEvent(ev))
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  1Q      - victim crushed by HoL blocking, no machinery at all")
	fmt.Println("  ITh     - victim restored by throttling alone (marks + BECNs), slow")
	fmt.Println("  FBICM   - victim restored by isolation alone (detections + stops)")
	fmt.Println("  CCFIT   - both: isolation reacts instantly, throttling frees resources")
	fmt.Println("  VOQnet  - reference: per-destination queues everywhere")
}
