// Quickstart: build the paper's Configuration #1, run a 3:1 hot spot
// plus a victim flow under CCFIT for two simulated milliseconds, and
// print the victim's bandwidth over time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ccfit "repro"
)

func main() {
	// The paper's CCFIT preset: 2 CFQs per port, FECN/BECN throttling.
	params := ccfit.CCFIT()

	net, err := ccfit.Build(ccfit.Config1(), params, ccfit.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	end := ccfit.MS(2)
	err = net.AddFlows([]ccfit.Flow{
		// The victim: node 0 -> node 3 at 100% of its 2.5 GB/s link.
		{ID: 0, Src: 0, Dst: 3, Start: 0, End: end, Rate: 1.0},
		// Three contributors piling onto node 4 (the hot spot).
		{ID: 1, Src: 1, Dst: 4, Start: ccfit.MS(0.5), End: end, Rate: 1.0},
		{ID: 2, Src: 2, Dst: 4, Start: ccfit.MS(0.5), End: end, Rate: 1.0},
		{ID: 3, Src: 5, Dst: 4, Start: ccfit.MS(0.5), End: end, Rate: 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}

	net.RunMS(2)

	fmt.Println("victim flow bandwidth (GB/s) per 50 us bin:")
	series := net.Collector.FlowSeries(0, 0)
	for i, v := range series {
		fmt.Printf("  t=%5.2f ms  %5.2f  %s\n",
			float64(i)*net.Collector.BinMS(), v, bar(v, 2.5))
	}
	fmt.Printf("\ndelivered %d packets, mean latency %.0f ns\n",
		net.Collector.DeliveredPkts, net.Collector.AvgLatencyNS())
	fmt.Println("note: the victim holds ~2.5 GB/s through the hot spot —")
	fmt.Println("congested packets are isolated in CFQs and throttled at the sources.")
}

// bar renders a quick ASCII gauge.
func bar(v, max float64) string {
	n := int(v / max * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
