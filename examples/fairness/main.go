// Fairness: the parking-lot problem (Section IV-C). Four contributors
// share the link into node 4, but two of them (F1, F2) arrive through
// a shared upstream queue while two (F5, F6) are sole users of theirs.
// Round-robin arbitration then hands F5/F6 twice the bandwidth —
// unless per-flow injection throttling equalises the shares. The
// example prints each contributor's share and Jain's fairness index
// under every scheme, reproducing the story of Figs. 9 and 10.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	ccfit "repro"
)

func main() {
	fmt.Println("parking-lot fairness on Config #1: F1,F2 share a queue; F5,F6 are sole users")
	fmt.Printf("%-8s %7s %7s %7s %7s %9s %8s\n", "scheme", "F1", "F2", "F5", "F6", "hot total", "Jain")

	for _, name := range []string{"1Q", "FBICM", "ITh", "CCFIT"} {
		params, err := ccfit.Scheme(name)
		if err != nil {
			log.Fatal(err)
		}
		net, err := ccfit.Build(ccfit.Config1(), params, ccfit.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		end := ccfit.MS(8)
		err = net.AddFlows([]ccfit.Flow{
			{ID: 1, Src: 1, Dst: 4, Start: 0, End: end, Rate: 1.0},
			{ID: 2, Src: 2, Dst: 4, Start: 0, End: end, Rate: 1.0},
			{ID: 5, Src: 5, Dst: 4, Start: 0, End: end, Rate: 1.0},
			{ID: 6, Src: 6, Dst: 4, Start: 0, End: end, Rate: 1.0},
		})
		if err != nil {
			log.Fatal(err)
		}
		net.RunMS(8)

		bins := len(net.Collector.TotalSeries(0))
		var shares []float64
		total := 0.0
		for _, f := range []int{1, 2, 5, 6} {
			v := net.Collector.MeanFlowBandwidth(f, bins/2, bins)
			shares = append(shares, v)
			total += v
		}
		fmt.Printf("%-8s %6.2fG %6.2fG %6.2fG %6.2fG %8.2fG %8.3f\n",
			name, shares[0], shares[1], shares[2], shares[3], total, ccfit.JainIndex(shares))
	}

	fmt.Println()
	fmt.Println("expected: 1Q and FBICM give F5/F6 about double (parking lot, Jain ~0.9);")
	fmt.Println("ITh and CCFIT equalise all four near 0.625 GB/s (Jain ~1.0) by throttling")
	fmt.Println("per flow — FBICM alone cannot, because it never touches the sources.")
}
