// Benchmarks regenerating the paper's evaluation: one benchmark per
// table/figure (the printable series come from cmd/ccfit-figures; the
// benches here run the same experiments end to end and report the
// headline number of each figure as a custom metric), plus ablation
// benches for the design parameters DESIGN.md calls out.
//
// Figure-8 benches run a time-scaled variant (same code path, same
// burst structure, 2 ms instead of 4 ms) so `go test -bench=.` stays
// tractable; cmd/ccfit-figures runs the full-length version.
package ccfit_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	ccfit "repro"
	"repro/internal/experiments"
)

// runExp executes one (experiment, scheme) pair and reports the mean
// normalized throughput as the benchmark's figure-of-merit.
func runExp(b *testing.B, expID, scheme string) {
	b.Helper()
	exp, err := ccfit.ExperimentByID(expID)
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := ccfit.RunExperiment(exp, scheme, 1)
		if err != nil {
			b.Fatal(err)
		}
		mean = r.Summary.MeanNormalized
	}
	b.ReportMetric(mean, "norm-throughput")
}

// runScaled executes a time-scaled copy of an experiment.
func runScaled(b *testing.B, expID, scheme string, scale float64) {
	b.Helper()
	exp, err := ccfit.ExperimentByID(expID)
	if err != nil {
		b.Fatal(err)
	}
	exp.Duration = ccfit.Cycle(float64(exp.Duration) * scale)
	var mean float64
	for i := 0; i < b.N; i++ {
		p, err := ccfit.Scheme(scheme)
		if err != nil {
			b.Fatal(err)
		}
		n, err := exp.Build(p, 1, exp.Bin, exp.Duration, experiments.BuildOpts{})
		if err != nil {
			b.Fatal(err)
		}
		n.Run(exp.Duration)
		r := experiments.Harvest(exp, scheme, 1, n)
		mean = r.Summary.MeanNormalized
	}
	b.ReportMetric(mean, "norm-throughput")
}

// BenchmarkTable1Configs measures building (and validating) all three
// Table I networks with routing tables under the CCFIT preset.
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, build := range []func() (*ccfit.Network, error){
			func() (*ccfit.Network, error) {
				return ccfit.Build(ccfit.Config1(), ccfit.CCFIT(), ccfit.Options{})
			},
			func() (*ccfit.Network, error) {
				return ccfit.BuildFatTree(ccfit.Config2(), ccfit.CCFIT(), ccfit.Options{})
			},
			func() (*ccfit.Network, error) {
				return ccfit.BuildFatTree(ccfit.Config3(), ccfit.CCFIT(), ccfit.Options{})
			},
		} {
			if _, err := build(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Fig. 7: throughput versus time on Configs #1 and #2.
func BenchmarkFig7a(b *testing.B) {
	for _, s := range []string{"1Q", "ITh", "FBICM", "CCFIT"} {
		b.Run(s, func(b *testing.B) { runExp(b, "fig7a", s) })
	}
}

func BenchmarkFig7b(b *testing.B) {
	for _, s := range []string{"1Q", "ITh", "FBICM", "CCFIT"} {
		b.Run(s, func(b *testing.B) { runExp(b, "fig7b", s) })
	}
}

func BenchmarkFig7c(b *testing.B) {
	for _, s := range []string{"1Q", "ITh", "FBICM", "CCFIT"} {
		b.Run(s, func(b *testing.B) { runExp(b, "fig7c", s) })
	}
}

// Fig. 8: Config #3 under 1/4/6 congestion trees (time-scaled; see
// the package comment).
func BenchmarkFig8a(b *testing.B) {
	for _, s := range []string{"1Q", "ITh", "FBICM", "CCFIT", "VOQnet"} {
		b.Run(s, func(b *testing.B) { runScaled(b, "fig8a", s, 0.5) })
	}
}

func BenchmarkFig8b(b *testing.B) {
	for _, s := range []string{"1Q", "ITh", "FBICM", "CCFIT", "VOQnet"} {
		b.Run(s, func(b *testing.B) { runScaled(b, "fig8b", s, 0.5) })
	}
}

func BenchmarkFig8c(b *testing.B) {
	for _, s := range []string{"1Q", "ITh", "FBICM", "CCFIT", "VOQnet"} {
		b.Run(s, func(b *testing.B) { runScaled(b, "fig8c", s, 0.5) })
	}
}

// Fig. 9 / Fig. 10: per-flow fairness runs. The figure-of-merit is the
// Jain index over the contributing flows' steady-state bandwidth.
func benchFairness(b *testing.B, expID string, flows []int) {
	exp, err := ccfit.ExperimentByID(expID)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range exp.Schemes {
		b.Run(s, func(b *testing.B) {
			var jain float64
			for i := 0; i < b.N; i++ {
				r, err := ccfit.RunExperiment(exp, s, 1)
				if err != nil {
					b.Fatal(err)
				}
				var shares []float64
				for _, f := range r.Flows {
					for _, want := range flows {
						if f.ID == want {
							shares = append(shares, ccfit.WindowMean(r, f.GBs, 8, 10))
						}
					}
				}
				jain = ccfit.JainIndex(shares)
			}
			b.ReportMetric(jain, "jain")
		})
	}
}

func BenchmarkFig9(b *testing.B) {
	// Fairness among the four contributors to the hot spot.
	benchFairness(b, "fig9", []int{1, 2, 5, 6})
}

func BenchmarkFig10(b *testing.B) {
	benchFairness(b, "fig10", []int{0, 1, 2, 3, 4})
}

// Ablations: design-choice sensitivity on the Config #1 hot spot
// (fast) — CFQ count, iSLIP iterations, BECN pacing, detection
// threshold.
func ablate(b *testing.B, mutate func(*ccfit.Params)) {
	exp, err := ccfit.ExperimentByID("fig7a")
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		p := ccfit.CCFIT()
		mutate(&p)
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
		n, err := exp.Build(p, 1, exp.Bin, exp.Duration, experiments.BuildOpts{})
		if err != nil {
			b.Fatal(err)
		}
		n.Run(exp.Duration)
		mean = experiments.Harvest(exp, p.Name, 1, n).Summary.MeanNormalized
	}
	b.ReportMetric(mean, "norm-throughput")
}

func BenchmarkAblationNumCFQs(b *testing.B) {
	for _, v := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cfqs=%d", v), func(b *testing.B) {
			ablate(b, func(p *ccfit.Params) { p.NumCFQs = v })
		})
	}
}

func BenchmarkAblationISlip(b *testing.B) {
	for _, v := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("iters=%d", v), func(b *testing.B) {
			ablate(b, func(p *ccfit.Params) { p.ISlipIters = v })
		})
	}
}

func BenchmarkAblationBECNPacing(b *testing.B) {
	for _, ns := range []float64{0, 2000, 4000, 8000} {
		b.Run(fmt.Sprintf("pace=%.0fns", ns), func(b *testing.B) {
			ablate(b, func(p *ccfit.Params) { p.BECNPacing = ccfit.NS(ns) })
		})
	}
}

func BenchmarkAblationDetection(b *testing.B) {
	for _, mtus := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("detect=%dMTU", mtus), func(b *testing.B) {
			ablate(b, func(p *ccfit.Params) { p.DetectionThreshold = mtus * ccfit.MTU })
		})
	}
}

func BenchmarkAblationStopThreshold(b *testing.B) {
	for _, mtus := range []int{6, 10, 16, 24} {
		b.Run(fmt.Sprintf("stop=%dMTU", mtus), func(b *testing.B) {
			ablate(b, func(p *ccfit.Params) { p.StopThreshold = mtus * ccfit.MTU })
		})
	}
}

// BenchmarkExtraQueueing runs the related-work queue-scheme comparison
// (xqueueing extra) at half duration for the static disciplines.
func BenchmarkExtraQueueing(b *testing.B) {
	for _, s := range []string{"DBBM", "VOQsw", "OBQA"} {
		b.Run(s, func(b *testing.B) { runScaled(b, "xqueueing", s, 0.5) })
	}
}

// BenchmarkPartitionedEngine runs the 512-node Config #4
// hotspot+victims scenario (x512hotspot, time-scaled) under the
// partitioned engine at 1, 2 and 4 shard workers. Results are
// byte-identical across worker counts, so ns/op is the only thing that
// moves: on a multi-core host the >1 variants show the parallel
// speedup; on a single core they price the window barriers and
// mailbox hops instead.
func BenchmarkPartitionedEngine(b *testing.B) {
	exp, err := ccfit.ExperimentByID("x512hotspot")
	if err != nil {
		b.Fatal(err)
	}
	exp.Duration = ccfit.Cycle(float64(exp.Duration) * 0.1)
	if exp.Bin > exp.Duration {
		exp.Bin = exp.Duration
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				p, err := ccfit.Scheme("CCFIT")
				if err != nil {
					b.Fatal(err)
				}
				n, err := exp.Build(p, 1, exp.Bin, exp.Duration, experiments.BuildOpts{SimWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
				n.Run(exp.Duration)
				r := experiments.Harvest(exp, "CCFIT", 1, n)
				mean = r.Summary.MeanNormalized
			}
			b.ReportMetric(mean, "norm-throughput")
		})
	}
}

// BenchmarkRunnerParallel measures the figure campaign (every paper
// experiment × scheme, time-scaled like the Fig. 8 benches) executed
// through the runner at 1 worker versus one worker per core, so
// BENCH_*.json captures the parallel-orchestration speedup trajectory
// alongside the per-figure numbers.
func BenchmarkRunnerParallel(b *testing.B) {
	var exps []ccfit.Experiment
	jobCount := 0
	for _, e := range ccfit.Experiments() {
		if e.ID == "table1" {
			continue
		}
		e.Duration = ccfit.Cycle(float64(e.Duration) * 0.1)
		exps = append(exps, e)
		jobCount += len(e.Schemes)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			jobs := ccfit.JobGrid(exps, nil, []int64{1})
			for i := 0; i < b.N; i++ {
				results, err := ccfit.RunJobs(context.Background(), jobs, ccfit.RunOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.Job, r.Err)
					}
				}
			}
			b.ReportMetric(float64(jobCount), "jobs")
		})
	}
}
