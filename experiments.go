package ccfit

import (
	"io"

	"repro/internal/experiments"
)

// Experiments returns the paper's evaluation registry in paper order:
// table1, fig7a-c, fig8a-c, fig9, fig10.
func Experiments() []Experiment { return experiments.Registry() }

// ExperimentByID looks up one experiment (e.g. "fig8b"), including the
// extras beyond the paper's figures.
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// ExtraExperiments returns experiments beyond the paper's evaluation
// (related-work comparisons and ablation scenarios).
func ExtraExperiments() []Experiment { return experiments.Extras() }

// RunExperiment executes one experiment under one scheme.
func RunExperiment(exp Experiment, scheme string, seed int64) (*Result, error) {
	return experiments.Run(exp, scheme, seed)
}

// RunAll executes an experiment under every scheme it evaluates.
func RunAll(exp Experiment, seed int64) ([]*Result, error) {
	return experiments.RunAll(exp, seed)
}

// Replication summarises one (experiment, scheme) pair across seeds.
type Replication = experiments.Replication

// RunSeeds executes an experiment under one scheme for every seed and
// aggregates mean/stddev statistics.
func RunSeeds(exp Experiment, scheme string, seeds []int64) (*Replication, error) {
	return experiments.RunSeeds(exp, scheme, seeds)
}

// RenderReplications prints a replication table (mean ± sd per scheme).
func RenderReplications(w io.Writer, exp Experiment, reps []*Replication) {
	experiments.RenderReplications(w, exp, reps)
}

// RenderTable1 prints Table I derived from the generated topologies.
func RenderTable1(w io.Writer) { experiments.RenderTable1(w) }

// RenderThroughput prints a throughput-versus-time experiment.
func RenderThroughput(w io.Writer, exp Experiment, results []*Result) {
	experiments.RenderThroughput(w, exp, results)
}

// RenderFlows prints per-flow bandwidth series (Figs. 9/10 layout).
func RenderFlows(w io.Writer, exp Experiment, results []*Result) {
	experiments.RenderFlows(w, exp, results)
}

// RenderSummary prints per-run congestion-management counters.
func RenderSummary(w io.Writer, results []*Result) {
	experiments.RenderSummary(w, results)
}

// RenderFCT prints flow-completion-time slowdown tables for results
// that carry FCT stats (no output for pure CBR runs).
func RenderFCT(w io.Writer, results []*Result) {
	experiments.RenderFCT(w, results)
}

// WriteCSV emits a machine-readable result set.
func WriteCSV(w io.Writer, exp Experiment, results []*Result) {
	experiments.WriteCSV(w, exp, results)
}

// WindowMean averages series bins whose start time is in [fromMS,toMS).
func WindowMean(r *Result, series []float64, fromMS, toMS float64) float64 {
	return experiments.WindowMean(r, series, fromMS, toMS)
}
